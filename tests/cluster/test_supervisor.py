"""Supervisor respawn-with-backoff, using a deliberately-exiting worker.

``cluster_exit_on_start`` makes every generation ``os._exit`` before it
even attaches the arenas, so each spawn is a guaranteed immediate death:
the supervisor must respawn with exponential backoff and, after
``max_respawns`` deaths, mark the replica failed and stop trying.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.supervisor import Supervisor, slot_floats_for
from repro.cluster.worker import CRASH_EXIT_CODE
from tests.cluster.conftest import ECHO_SHAPE, echo_config


def make_supervisor(extra_cfg=None, **kw):
    cfg = echo_config(replicas=1, **(extra_cfg or {}))
    defaults = dict(
        replicas=1,
        slots=2,
        req_slot_floats=slot_floats_for(ECHO_SHAPE, 4),
        res_slot_floats=40,
        backoff_base=0.01,
        backoff_cap=0.05,
        max_respawns=2,
    )
    defaults.update(kw)
    return Supervisor(cfg, **defaults)


class TestBackoffMath:
    def test_exponential_then_capped(self):
        sup = make_supervisor(backoff_base=0.25, backoff_cap=4.0)
        assert sup.backoff_delay(0) == 0.25
        assert sup.backoff_delay(1) == 0.5
        assert sup.backoff_delay(2) == 1.0
        assert sup.backoff_delay(10) == 4.0  # capped

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            make_supervisor(replicas=0)
        with pytest.raises(ValueError):
            make_supervisor(slots=0)

    def test_slot_floats_for(self):
        assert slot_floats_for((1, 8, 8), 4) == 256
        assert slot_floats_for((3, 32, 32), 2) == 2 * 3 * 32 * 32


class TestRespawnToFailure:
    def test_crash_loop_respawns_then_fails(self):
        deaths, failures = [], []
        sup = make_supervisor(
            extra_cfg={"cluster_exit_on_start": True},
            on_death=deaths.append,
            on_failed=failures.append,
        )
        sup.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if sup.handle(0).state == "failed":
                    break
                time.sleep(0.02)
            handle = sup.handle(0)
            assert handle.state == "failed"
            assert not handle.alive
            assert handle.exitcode == CRASH_EXIT_CODE
            # Generations 0..max_respawns all ran and died.
            assert handle.generation == 2
            assert sup.respawn_count(0) == 2
            assert deaths == [0, 0, 0]   # one callback per death
            assert failures == [0]       # exactly one terminal failure
        finally:
            sup.stop()

    def test_liveness_reports_failed_state(self):
        sup = make_supervisor(extra_cfg={"cluster_exit_on_start": True})
        sup.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                rows = sup.liveness()
                if rows[0]["state"] == "failed":
                    break
                time.sleep(0.02)
            row = sup.liveness()[0]
            assert row["state"] == "failed"
            assert row["alive"] is False
            assert row["respawns"] == 2
        finally:
            sup.stop()


class TestCleanLifecycle:
    def test_healthy_replica_survives_and_stops_cleanly(self):
        sup = make_supervisor()
        sup.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if sup.stats.get(0, "alive") >= 1.0:
                    break
                time.sleep(0.02)
            assert sup.stats.get(0, "alive") >= 1.0
            assert sup.handle(0).alive
            assert sup.respawn_count(0) == 0
        finally:
            sup.stop()
        assert sup.stats is None  # shared memory released
        assert not sup.handle(0).alive

    def test_stop_is_idempotent(self):
        sup = make_supervisor()
        sup.start()
        sup.stop()
        sup.stop()
