"""Shared-memory transport primitives: segments, arenas, stats block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.shm import STATS_FIELDS, ShmArena, ShmSegment, ShmStatsBlock


class TestShmSegment:
    def test_create_attach_share_bytes(self):
        with ShmSegment(nbytes=64) as seg:
            seg.buf[:4] = b"abcd"
            attached = ShmSegment(name=seg.name)
            try:
                assert bytes(attached.buf[:4]) == b"abcd"
                assert not attached.owner and seg.owner
            finally:
                attached.close()

    def test_create_xor_attach(self):
        with pytest.raises(ValueError):
            ShmSegment()
        with pytest.raises(ValueError):
            ShmSegment(nbytes=8, name="x")

    def test_close_is_idempotent(self):
        seg = ShmSegment(nbytes=16)
        seg.close()
        seg.close()
        seg.unlink()


class TestShmArena:
    def test_write_then_read_roundtrip(self):
        with ShmArena(slots=3, slot_floats=32) as arena:
            arr = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
            shape = arena.write(1, arr)
            assert shape == (2, 3, 4)
            out = arena.read(1, shape)
            assert np.array_equal(out, arr)
            # read() owns its data: mutating the slot must not alias it.
            arena.write(1, np.zeros((2, 3, 4)))
            assert np.array_equal(out, arr)

    def test_cross_attach_zero_copy_view(self):
        with ShmArena(slots=2, slot_floats=16) as arena:
            attached = ShmArena(slots=2, slot_floats=16, name=arena.name)
            try:
                arena.write(0, np.full((4, 4), 7.0))
                assert np.array_equal(attached.view(0, (4, 4)), np.full((4, 4), 7.0))
            finally:
                attached.close()

    def test_bounds_checked(self):
        with ShmArena(slots=2, slot_floats=8) as arena:
            with pytest.raises(IndexError):
                arena.view(2, (1,))
            with pytest.raises(ValueError):
                arena.view(0, (3, 3))  # 9 floats > 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ShmArena(slots=0, slot_floats=8)
        with pytest.raises(ValueError):
            ShmArena(slots=1, slot_floats=0)


class TestShmStatsBlock:
    def test_owner_zeroes_and_fields_roundtrip(self):
        with ShmStatsBlock(replicas=2) as stats:
            assert all(v == 0.0 for v in stats.snapshot(0).values())
            stats.set(0, "pid", 1234.0)
            stats.add(0, "images", 8.0)
            stats.add(0, "images", 4.0)
            assert stats.get(0, "pid") == 1234.0
            assert stats.get(0, "images") == 12.0
            # Rows are independent (single-writer-per-row contract).
            assert stats.get(1, "images") == 0.0

    def test_snapshot_all_rows_detached(self):
        with ShmStatsBlock(replicas=2) as stats:
            stats.set(1, "batches", 5.0)
            snap = stats.snapshot()
            assert len(snap) == 2
            assert snap[1]["batches"] == 5.0
            stats.set(1, "batches", 9.0)
            assert snap[1]["batches"] == 5.0  # copy, not a view

    def test_attacher_sees_writer_updates(self):
        with ShmStatsBlock(replicas=1) as stats:
            reader = ShmStatsBlock(replicas=1, name=stats.name)
            try:
                stats.set(0, "heartbeat", 42.0)
                assert reader.get(0, "heartbeat") == 42.0
            finally:
                reader.close()

    def test_schema_covers_protocol_fields(self):
        # The worker/router protocol writes these; renaming one silently
        # desynchronizes the two processes, so pin the schema.
        for f in ("pid", "alive", "heartbeat", "requests", "images",
                  "batches", "errors", "busy_seconds",
                  "sens_rows_total", "sens_rows_computed"):
            assert f in STATS_FIELDS
