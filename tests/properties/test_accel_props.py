"""Property-based checks of the accelerator substrate models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.memory import DEFAULT_MEMORY, MemoryConfig, conv_layer_traffic, memory_cycles
from repro.accel.schedule import candidate_sets, ideal_dynamic_schedule, static_schedule


def traffic(images=1, in_c=16, out_c=16, k=3, hw=16, w_bits=8, a_bits=8, mem=DEFAULT_MEMORY):
    return conv_layer_traffic(
        in_c, out_c, k, hw, hw, images,
        weight_bits=w_bits, act_bits=a_bits, reuse=mem.dense_reuse, mem=mem,
    )


class TestTrafficProperties:
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    def test_monotone_in_images(self, a, b):
        lo, hi = sorted((a, b))
        assert traffic(images=lo).total_bytes <= traffic(images=hi).total_bytes

    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=2, max_value=16))
    def test_monotone_in_weight_bits(self, a, b):
        lo, hi = sorted((a, b))
        assert traffic(w_bits=lo).weight_bytes <= traffic(w_bits=hi).weight_bytes

    @given(st.integers(min_value=4, max_value=256))
    def test_nonnegative_components(self, out_c):
        t = traffic(out_c=out_c)
        assert t.weight_bytes >= 0 and t.input_bytes >= 0 and t.output_bytes >= 0

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_cycles_inverse_in_bandwidth(self, bw):
        mem = MemoryConfig(dram_bandwidth_bytes_per_cycle=bw)
        t = traffic(mem=mem)
        assert memory_cycles(t, mem) == pytest.approx(t.total_bytes / bw)


class TestScheduleProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=24),
        st.integers(min_value=1, max_value=12),
    )
    def test_static_work_conserving(self, loads, n):
        res = static_schedule(loads, n)
        assert res.busy_cycles.sum() == sum(loads) * 3
        assert res.makespan_cycles == res.busy_cycles.max() if loads else 0

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=24),
        st.integers(min_value=1, max_value=12),
    )
    def test_ideal_respects_lower_bounds(self, loads, n):
        res = ideal_dynamic_schedule(loads, n)
        total = sum(loads) * 3
        assert res.makespan_cycles >= total / n - 3  # ceil slack
        assert res.makespan_cycles >= 0

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=27),
    )
    @settings(deadline=None)
    def test_candidate_sets_cover_all_channels(self, channels, arrays):
        sets = candidate_sets(channels, arrays)
        union = set()
        for s in sets:
            union.update(s)
        assert union == set(range(channels))

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=3, max_value=12),
    )
    @settings(deadline=None)
    def test_per_cluster_coverage(self, channels, arrays):
        """The paper's constraint: each *cluster* covers every channel."""
        clusters = 3
        sets = candidate_sets(channels, arrays, clusters=clusters)
        per_cluster = arrays // clusters
        if per_cluster == 0:
            return
        for c in range(clusters):
            covered = set()
            for a in range(c * per_cluster, (c + 1) * per_cluster):
                covered.update(sets[a])
            assert covered == set(range(channels))
