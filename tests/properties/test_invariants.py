"""Cross-module property-based invariants (hypothesis).

These span module boundaries — the single-module properties live next to
their modules; here are the ones that tie the reproduction together.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.alloc import (
    choose_allocation,
    idle_fractions,
    max_sensitive_fraction,
    table1_configurations,
)
from repro.accel.energy import mac_energy_pj
from repro.accel.pe import bitfusion_mac_cycles
from repro.core.base import int_conv2d
from repro.core.odq import odq_mixed_conv, odq_weight_qparams
from repro.quant.bitsplit import split_planes
from repro.quant.uniform import (
    affine_qparams,
    fake_quantize,
    quantize,
    symmetric_qparams,
)


class TestQuantizationInvariants:
    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=64),
        st.integers(min_value=2, max_value=8),
    )
    def test_fake_quant_idempotent(self, values, bits):
        """Quantizing an already-quantized value is the identity."""
        qp = symmetric_qparams(10.0, bits)
        x = np.array(values)
        once = fake_quantize(x, qp)
        twice = fake_quantize(once, qp)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(st.integers(min_value=2, max_value=8))
    def test_affine_zero_is_exact(self, bits):
        qp = affine_qparams(-1.3, 2.7, bits)
        assert fake_quantize(np.array([0.0]), qp)[0] == 0.0


class TestEq3EndToEnd:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_odq_mixed_conv_mask_semantics(self, seed):
        """For random layers: out == full where |partial|>t, else partial."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3)) * 0.5
        qp_a = affine_qparams(0.0, 1.0, 4)
        qp_w = odq_weight_qparams(w, 4)
        t = float(rng.uniform(0, 0.5))
        r = odq_mixed_conv(x, w, None, 1, 1, t, qp_a, qp_w)
        m = r["mask"].mask
        np.testing.assert_array_equal(r["out"][m], r["full"][m])
        np.testing.assert_array_equal(r["out"][~m], r["partial"][~m])

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_uncompensated_partial_is_pure_hh_conv(self, seed):
        """Without compensation, partial == (HH conv << 2N) - zp term,
        i.e., exactly the predictor hardware's Eq.-3 term."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, (1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3)) * 0.5
        qp_a = affine_qparams(0.0, 1.0, 4)
        qp_w = odq_weight_qparams(w, 4)
        r = odq_mixed_conv(
            x, w, None, 1, 0, 0.1, qp_a, qp_w, compensate_low_bits=False
        )
        q = quantize(x, qp_a)
        qw = quantize(w, qp_w)
        hh = int_conv2d(
            split_planes(q, qp_a).high, split_planes(qw, qp_w).high, 1, 0
        )
        w_sum = qw.sum(axis=(1, 2, 3)).reshape(1, -1, 1, 1)
        want = qp_a.scale * qp_w.scale * ((hh << 4) - qp_a.zero_point * w_sum)
        np.testing.assert_allclose(r["partial"], want, atol=1e-12)


class TestAcceleratorInvariants:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_dynamic_allocation_minimizes_makespan_among_bubble_free(self, s):
        """The paper's rule — most predictor-heavy *bubble-free* config —
        is makespan-minimal among all bubble-free configs (a config that
        admits bubbles can occasionally be faster, but the paper excludes
        those to keep the output-buffer occupancy stable)."""
        chosen = choose_allocation(s)
        t_chosen = idle_fractions(s, chosen).cycles
        feasible = [c for c in table1_configurations() if c.max_sensitive_fraction >= s]
        for cfg in feasible:
            assert t_chosen <= idle_fractions(s, cfg).cycles + 1e-12

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
    )
    def test_bitfusion_cycles_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert bitfusion_mac_cycles(lo, 2) <= bitfusion_mac_cycles(hi, 2)

    @given(st.integers(min_value=9, max_value=21))
    def test_balance_is_tight(self, p):
        """At exactly s = e/(3p) neither side idles."""
        e = 27 - p
        s = max_sensitive_fraction(p, e)
        from repro.accel.alloc import PEAllocation

        stats = idle_fractions(min(s, 1.0), PEAllocation(p, e))
        assert stats.predictor_idle_fraction == pytest.approx(0.0, abs=1e-12)

    @given(
        st.dictionaries(
            st.sampled_from(["int16", "int8", "pred_int2", "exec_int4"]),
            st.integers(min_value=0, max_value=10**9),
            min_size=1,
        )
    )
    def test_mac_energy_additive(self, census):
        total = mac_energy_pj(census)
        parts = sum(mac_energy_pj({k: v}) for k, v in census.items())
        assert total == pytest.approx(parts)

    @given(st.floats(min_value=0.0, max_value=0.66), st.floats(min_value=0.0, max_value=0.66))
    def test_odq_compute_monotone_in_sensitivity(self, s1, s2):
        """More sensitive outputs never make the ODQ accelerator faster."""
        from repro.accel.simulator import LayerWorkload, ODQAccelerator

        lo, hi = sorted((s1, s2))

        def wl(s):
            total_out = 8 * 8 * 8
            macs = total_out * 16 * 9
            return LayerWorkload(
                name="C", in_channels=16, out_channels=8, kernel=3,
                out_h=8, out_w=8, images=1,
                macs={"pred_int2": macs, "exec_int4": int(macs * s)},
                sensitive_fraction=s,
            )

        accel = ODQAccelerator(scheduler="static")
        assert accel.compute_cycles(wl(lo)) <= accel.compute_cycles(wl(hi)) + 1e-9
