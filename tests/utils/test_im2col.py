"""im2col / col2im correctness against a naive reference implementation."""

import numpy as np
import pytest

from repro.utils.im2col import col2im, conv_output_size, im2col, pad_nchw


def naive_conv2d(x, w, stride, padding):
    """Direct six-loop convolution used as ground truth."""
    n, c, h, wd = x.shape
    oc, _, k, _ = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (wd + 2 * padding - k) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for ni in range(n):
        for oi in range(oc):
            for yi in range(oh):
                for xi in range(ow):
                    patch = xp[ni, :, yi * stride : yi * stride + k, xi * stride : xi * stride + k]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum()
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_zero_padding_is_noop(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        assert pad_nchw(x, 0) is x

    def test_padding_shape_and_content(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        xp = pad_nchw(x, 2)
        assert xp.shape == (2, 3, 8, 8)
        np.testing.assert_array_equal(xp[:, :, 2:-2, 2:-2], x)
        assert xp[:, :, 0, :].sum() == 0


class TestIm2col:
    @pytest.mark.parametrize("stride,padding,k", [(1, 0, 3), (1, 1, 3), (2, 1, 3), (2, 0, 2), (1, 2, 5)])
    def test_matches_naive_conv(self, rng, stride, padding, k):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, k, k))
        cols = im2col(x, k, stride, padding)
        oh = conv_output_size(8, k, stride, padding)
        out = (cols @ w.reshape(4, -1).T).reshape(2, oh, oh, 4).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(out, naive_conv2d(x, w, stride, padding), atol=1e-10)

    def test_row_count(self, rng):
        x = rng.normal(size=(3, 2, 6, 6))
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (3 * 6 * 6, 2 * 9)

    def test_identity_kernel(self, rng):
        """1x1 kernel im2col is a channel-last reshape of the input."""
        x = rng.normal(size=(2, 5, 4, 4))
        cols = im2col(x, 1, 1, 0)
        expected = x.transpose(0, 2, 3, 1).reshape(-1, 5)
        np.testing.assert_array_equal(cols, expected)


class TestCol2im:
    @pytest.mark.parametrize("stride,padding,k", [(1, 0, 3), (1, 1, 3), (2, 1, 3), (2, 0, 2)])
    def test_adjoint_property(self, rng, stride, padding, k):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, k, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, k, stride, padding)).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_ones_counts_patch_membership(self):
        """Folding ones counts how many patches each pixel belongs to."""
        x_shape = (1, 1, 4, 4)
        cols = np.ones((9, 4))  # 3x3 output grid of 2x2 patches, stride 1
        counts = col2im(cols, x_shape, kernel=2, stride=1, padding=0)
        # Corner pixels appear in 1 patch, center pixels in 4.
        assert counts[0, 0, 0, 0] == 1
        assert counts[0, 0, 1, 1] == 4
        assert counts[0, 0, 0, 1] == 2
