"""RNG helpers."""

import numpy as np

from repro.config import DEFAULT_SEED
from repro.utils.rng import new_rng, seed_everything


class TestNewRng:
    def test_none_uses_default_seed(self):
        a = new_rng(None).integers(0, 1000, 10)
        b = new_rng(DEFAULT_SEED).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_int_seed_deterministic(self):
        np.testing.assert_array_equal(
            new_rng(42).integers(0, 1000, 5), new_rng(42).integers(0, 1000, 5)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_threading_one_rng_through_consumers(self):
        """Passing one generator to two consumers advances shared state."""
        g = new_rng(7)
        a = new_rng(g).integers(0, 1000, 3)
        b = new_rng(g).integers(0, 1000, 3)
        assert not np.array_equal(a, b)


class TestSeedEverything:
    def test_global_numpy_seeded(self):
        seed_everything(123)
        a = np.random.rand(3)
        seed_everything(123)
        np.testing.assert_array_equal(a, np.random.rand(3))

    def test_stdlib_seeded(self):
        import random

        seed_everything(99)
        a = random.random()
        seed_everything(99)
        assert a == random.random()
