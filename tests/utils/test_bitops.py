"""Bit-plane split/merge semantics, including the signed floor convention."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import bit_plane, int_range, merge_bits, split_bits


class TestIntRange:
    def test_signed(self):
        assert int_range(4, True) == (-8, 7)
        assert int_range(2, True) == (-2, 1)
        assert int_range(8, True) == (-128, 127)

    def test_unsigned(self):
        assert int_range(4, False) == (0, 15)
        assert int_range(2, False) == (0, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            int_range(0, True)


class TestSplitBits:
    def test_unsigned_int4_examples(self):
        q = np.array([0, 1, 3, 4, 7, 12, 15])
        high, low = split_bits(q, 2, signed=False)
        np.testing.assert_array_equal(high, [0, 0, 0, 1, 1, 3, 3])
        np.testing.assert_array_equal(low, [0, 1, 3, 0, 3, 0, 3])

    def test_signed_int4_examples(self):
        q = np.array([-8, -5, -1, 0, 3, 7])
        high, low = split_bits(q, 2, signed=True)
        # Floor semantics: -5 = (-2)*4 + 3, -1 = (-1)*4 + 3.
        np.testing.assert_array_equal(high, [-2, -2, -1, 0, 0, 1])
        np.testing.assert_array_equal(low, [0, 3, 3, 0, 3, 3])

    def test_low_always_nonnegative_signed(self):
        q = np.arange(-8, 8)
        _, low = split_bits(q, 2, signed=True)
        assert (low >= 0).all() and (low < 4).all()

    def test_unsigned_negative_rejected(self):
        with pytest.raises(ValueError):
            split_bits(np.array([-1]), 2, signed=False)

    def test_float_input_rejected(self):
        with pytest.raises(TypeError):
            split_bits(np.array([1.5]), 2, signed=False)

    @given(st.lists(st.integers(min_value=-8, max_value=7), min_size=1, max_size=64))
    def test_roundtrip_signed(self, values):
        q = np.array(values, dtype=np.int64)
        high, low = split_bits(q, 2, signed=True)
        np.testing.assert_array_equal(merge_bits(high, low, 2), q)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64),
           st.integers(min_value=1, max_value=7))
    def test_roundtrip_unsigned_any_split(self, values, low_bits):
        q = np.array(values, dtype=np.int64)
        high, low = split_bits(q, low_bits, signed=False)
        np.testing.assert_array_equal(merge_bits(high, low, low_bits), q)
        assert (low < (1 << low_bits)).all()


class TestBitPlane:
    def test_planes_of_five(self):
        q = np.array([5])  # 0b101
        assert bit_plane(q, 0) == 1
        assert bit_plane(q, 1) == 0
        assert bit_plane(q, 2) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_plane(np.array([-3]), 0)

    def test_reconstruction_from_planes(self):
        q = np.arange(16)
        recon = sum(bit_plane(q, p) << p for p in range(4))
        np.testing.assert_array_equal(recon, q)
