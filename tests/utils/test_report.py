"""ASCII table/chart rendering."""

import pytest

from repro.utils.report import ascii_bar_chart, ascii_table, format_percent


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.5) == "50.0%"
        assert format_percent(0.1234, digits=2) == "12.34%"


class TestAsciiTable:
    def test_alignment_and_content(self):
        out = ascii_table(["a", "long_header"], [[1, 2], ["xx", "yyyy"]])
        lines = out.splitlines()
        assert "a" in lines[0] and "long_header" in lines[0]
        assert all(len(l) == len(lines[0]) or "-" in l for l in lines)
        assert "yyyy" in out

    def test_title(self):
        out = ascii_table(["h"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])


class TestAsciiBarChart:
    def test_max_bar_fills_width(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "#" not in out
        assert "0.000" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
