"""Shared fixtures: deterministic RNGs, tiny datasets, and trained models.

The trained-model fixtures are session-scoped because NumPy training is
the slowest part of the suite; every test that needs a "real" network
shares the same small ResNet trained once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic_cifar10, synthetic_mnist
from repro.models import resnet20
from repro.nn import SGD, Trainer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small, fast synthetic CIFAR-like dataset (16x16, 10 classes)."""
    return synthetic_cifar10(
        num_train=320, num_test=96, image_size=16, seed=7, noise=0.12, max_shift=1
    )


@pytest.fixture(scope="session")
def mnist_dataset():
    return synthetic_mnist(num_train=128, num_test=64, seed=11)


@pytest.fixture(scope="session")
def trained_resnet(tiny_dataset):
    """A small ResNet-20 trained for a few epochs on the tiny dataset."""
    model = resnet20(scale=0.25, rng=np.random.default_rng(5))
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(5),
    )
    history = trainer.fit(
        tiny_dataset.x_train,
        tiny_dataset.y_train,
        tiny_dataset.x_test,
        tiny_dataset.y_test,
        epochs=6,
    )
    model.eval()
    return model, history


@pytest.fixture(scope="session")
def calib_batch(tiny_dataset):
    return tiny_dataset.x_train[:48]
