"""Augmentation and prototype internals of the synthetic data generator."""

import numpy as np

from repro.data.synthetic import _augment, _class_prototypes


class TestPrototypes:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        protos = _class_prototypes(5, 3, 16, rng)
        assert protos.shape == (5, 3, 16, 16)
        assert protos.min() >= -0.5 and protos.max() <= 1.5

    def test_classes_distinct(self):
        rng = np.random.default_rng(0)
        protos = _class_prototypes(4, 1, 16, rng)
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.abs(protos[i] - protos[j]).mean() > 0.01


class TestAugment:
    def test_no_shift_preserves_content_up_to_flip_contrast(self):
        rng = np.random.default_rng(0)
        x = rng.random((8, 1, 6, 6))
        out = _augment(x.copy(), np.random.default_rng(1), max_shift=0)
        # Every output is a flipped/contrast-scaled version of an input.
        for i in range(8):
            candidates = [x[i], x[i, :, :, ::-1]]
            ratios = []
            for c in candidates:
                with np.errstate(divide="ignore", invalid="ignore"):
                    r = out[i] / c
                r = r[np.isfinite(r)]
                ratios.append(np.ptp(r) < 1e-9 if r.size else False)
            assert any(ratios)

    def test_shift_stays_in_bounds(self):
        rng = np.random.default_rng(0)
        x = rng.random((16, 1, 8, 8))
        out = _augment(x.copy(), np.random.default_rng(2), max_shift=2)
        assert out.shape == x.shape
        assert np.isfinite(out).all()

    def test_contrast_bounded(self):
        x = np.ones((32, 1, 4, 4))
        out = _augment(x.copy(), np.random.default_rng(3), max_shift=0)
        assert out.min() >= 0.85 - 1e-9 and out.max() <= 1.15 + 1e-9
