"""Synthetic datasets: determinism, learnability signal, and shapes."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    make_synthetic_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)


class TestShapes:
    def test_cifar10_defaults(self):
        ds = synthetic_cifar10(num_train=32, num_test=16)
        assert ds.x_train.shape == (32, 3, 32, 32)
        assert ds.num_classes == 10
        assert ds.y_train.max() < 10

    def test_cifar100_classes(self):
        ds = synthetic_cifar100(num_train=256, num_test=16)
        assert ds.num_classes == 100
        assert len(np.unique(ds.y_train)) > 50

    def test_mnist_geometry(self):
        ds = synthetic_mnist(num_train=16, num_test=8)
        assert ds.x_train.shape[1:] == (1, 28, 28)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 1, 2, 2)), np.zeros(3), np.zeros((2, 1, 2, 2)), np.zeros(2), 2)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = synthetic_cifar10(num_train=16, num_test=8, seed=42)
        b = synthetic_cifar10(num_train=16, num_test=8, seed=42)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_different_seed_different_data(self):
        a = synthetic_cifar10(num_train=16, num_test=8, seed=1)
        b = synthetic_cifar10(num_train=16, num_test=8, seed=2)
        assert not np.allclose(a.x_train, b.x_train)


class TestLearnability:
    def test_class_structure_exists(self):
        """Images of the same class must be closer than across classes —
        the signal a classifier learns."""
        ds = make_synthetic_dataset(num_classes=4, image_size=16, num_train=200,
                                    num_test=10, noise=0.15, seed=3)
        means = np.stack([
            ds.x_train[ds.y_train == c].mean(axis=0) for c in range(4)
        ])
        across = np.sqrt(((means[0] - means[1]) ** 2).sum())
        assert across > 0.1  # prototypes are distinct

    def test_nearest_prototype_beats_chance(self):
        ds = make_synthetic_dataset(num_classes=10, image_size=16, num_train=400,
                                    num_test=100, noise=0.2, seed=3)
        protos = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(10)])
        d = ((ds.x_test[:, None] - protos[None]) ** 2).sum(axis=(2, 3, 4))
        acc = (d.argmin(axis=1) == ds.y_test).mean()
        assert acc > 0.3  # far above the 10% chance level

    def test_values_bounded(self):
        ds = synthetic_cifar10(num_train=16, num_test=8)
        assert ds.x_train.min() >= 0.0 and ds.x_train.max() <= 1.2
