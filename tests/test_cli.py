"""CLI dispatch: usage/exit codes, the dispatch table, and console entry.

Covers the contract that ``python -m repro`` (and the installed ``repro``
script) prints usage and exits 2 for missing/unknown commands instead of
tracebacking, and that every registered subcommand has a handler.
"""


import pytest

from repro.__main__ import HANDLERS, build_parser, main


class TestDispatchTable:
    def test_every_subcommand_has_a_handler(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        assert set(sub.choices) == set(HANDLERS)

    def test_serve_commands_registered(self):
        assert "serve" in HANDLERS
        assert "bench-serve" in HANDLERS

    def test_handlers_are_callable(self):
        assert all(callable(h) for h in HANDLERS.values())


class TestExitCodes:
    def test_no_command_prints_usage_and_exits_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "command is required" in err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["definitely-not-a-command"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_info_returns_zero(self, capsys):
        assert main(["info"]) == 0
        assert "ODQ" in capsys.readouterr().out

    def test_main_returns_int(self):
        # the [project.scripts] entry point requires an int return
        assert isinstance(main(["info"]), int)

    def test_module_entry_exits_with_main_result(self):
        # `python -m repro` wraps main() in sys.exit
        import repro.__main__ as mod

        assert mod.main.__module__ == "repro.__main__"
        assert "sys.exit(main())" in open(mod.__file__).read()


class TestServeArgs:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == "lenet"
        assert args.scheme == "odq"
        assert args.workers >= 1

    def test_bench_serve_accepts_tuning_flags(self):
        args = build_parser().parse_args(
            ["bench-serve", "--model", "lenet", "--scheme", "int8",
             "--max-batch-size", "16", "--requests", "8",
             "--naive-requests", "2", "--workers", "1"]
        )
        assert args.max_batch_size == 16
        assert args.requests == 8

    def test_serve_config_round_trip(self):
        from repro.__main__ import _serve_config_from_args

        args = build_parser().parse_args(
            ["serve", "--model", "lenet", "--scheme", "odq",
             "--threshold", "0.4", "--port", "0", "--max-wait-ms", "1.5"]
        )
        cfg = _serve_config_from_args(args)
        assert cfg.threshold == 0.4
        assert cfg.port == 0
        assert cfg.max_wait_ms == 1.5


@pytest.mark.parametrize("name", ["lenet", "lenet5"])
def test_lenet_alias_builds(name):
    from repro.models.registry import build_model

    model = build_model(name, num_classes=10, in_channels=1, image_size=28)
    assert model is not None


def test_console_script_declared():
    import pathlib

    pyproject = (
        pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    ).read_text()
    assert '[project.scripts]' in pyproject
    assert 'repro = "repro.__main__:main"' in pyproject


class TestTraceTail:
    SPAN = ('{"kind":"span","proc":"replica-0","name":"replica.chunk",'
            '"duration_us":1500.0,"attrs":{"trace_id":"abcd1234abcd1234"}}')
    LOG = ('{"kind":"log","proc":"replica-1","level":"warning",'
           '"logger":"repro.cluster.worker","event":"replica_injected_crash"}')

    def _spool(self, tmp_path):
        spool = tmp_path / "spool.jsonl"
        spool.write_text(self.SPAN + "\n" + self.LOG + "\n")
        return spool

    def test_missing_spool_errors(self, tmp_path, capsys):
        assert main(["trace-tail", str(tmp_path / "nope.jsonl")]) == 1
        assert "no spool" in capsys.readouterr().err

    def test_formats_span_and_log_lines(self, tmp_path, capsys):
        assert main(["trace-tail", str(self._spool(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "replica-0" in out and "replica.chunk" in out
        assert "1.500 ms" in out
        assert "trace=abcd1234abcd1234" in out
        assert "WARNING" in out and "replica_injected_crash" in out

    def test_raw_passthrough(self, tmp_path, capsys):
        assert main(
            ["trace-tail", str(self._spool(tmp_path)), "--raw"]
        ) == 0
        assert self.SPAN in capsys.readouterr().out

    def test_unparsable_line_passes_through(self):
        from repro.__main__ import _format_tail_line

        assert _format_tail_line("not json at all") == "not json at all"

    def test_follow_from_start_honors_duration(self, tmp_path, capsys):
        rc = main([
            "trace-tail", str(self._spool(tmp_path)),
            "--follow", "--from-start", "--poll", "0.05", "--duration", "0.2",
        ])
        assert rc == 0
        assert "replica.chunk" in capsys.readouterr().out


class TestGlobalFlagPosition:
    # The subcommand parser shares the observability parent and copies
    # its namespace over the root's — plain defaults would clobber
    # flags given before the subcommand (`repro --trace serve`).
    def test_flags_before_subcommand_survive(self):
        args = build_parser().parse_args(
            ["--trace", "--trace-out", "t.json", "serve"]
        )
        assert getattr(args, "trace", False) is True
        assert getattr(args, "trace_out", None) == "t.json"

    def test_flags_after_subcommand_survive(self):
        args = build_parser().parse_args(["serve", "--trace"])
        assert getattr(args, "trace", False) is True

    def test_unset_flags_are_absent_not_false_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert getattr(args, "trace", False) is False
        assert getattr(args, "trace_out", None) is None
