"""CLI dispatch: usage/exit codes, the dispatch table, and console entry.

Covers the contract that ``python -m repro`` (and the installed ``repro``
script) prints usage and exits 2 for missing/unknown commands instead of
tracebacking, and that every registered subcommand has a handler.
"""

import sys

import pytest

from repro.__main__ import HANDLERS, build_parser, main


class TestDispatchTable:
    def test_every_subcommand_has_a_handler(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        assert set(sub.choices) == set(HANDLERS)

    def test_serve_commands_registered(self):
        assert "serve" in HANDLERS
        assert "bench-serve" in HANDLERS

    def test_handlers_are_callable(self):
        assert all(callable(h) for h in HANDLERS.values())


class TestExitCodes:
    def test_no_command_prints_usage_and_exits_2(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "command is required" in err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["definitely-not-a-command"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_info_returns_zero(self, capsys):
        assert main(["info"]) == 0
        assert "ODQ" in capsys.readouterr().out

    def test_main_returns_int(self):
        # the [project.scripts] entry point requires an int return
        assert isinstance(main(["info"]), int)

    def test_module_entry_exits_with_main_result(self):
        # `python -m repro` wraps main() in sys.exit
        import repro.__main__ as mod

        assert mod.main.__module__ == "repro.__main__"
        assert "sys.exit(main())" in open(mod.__file__).read()


class TestServeArgs:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == "lenet"
        assert args.scheme == "odq"
        assert args.workers >= 1

    def test_bench_serve_accepts_tuning_flags(self):
        args = build_parser().parse_args(
            ["bench-serve", "--model", "lenet", "--scheme", "int8",
             "--max-batch-size", "16", "--requests", "8",
             "--naive-requests", "2", "--workers", "1"]
        )
        assert args.max_batch_size == 16
        assert args.requests == 8

    def test_serve_config_round_trip(self):
        from repro.__main__ import _serve_config_from_args

        args = build_parser().parse_args(
            ["serve", "--model", "lenet", "--scheme", "odq",
             "--threshold", "0.4", "--port", "0", "--max-wait-ms", "1.5"]
        )
        cfg = _serve_config_from_args(args)
        assert cfg.threshold == 0.4
        assert cfg.port == 0
        assert cfg.max_wait_ms == 1.5


@pytest.mark.parametrize("name", ["lenet", "lenet5"])
def test_lenet_alias_builds(name):
    from repro.models.registry import build_model

    model = build_model(name, num_classes=10, in_channels=1, image_size=28)
    assert model is not None


def test_console_script_declared():
    import pathlib

    pyproject = (
        pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
    ).read_text()
    assert '[project.scripts]' in pyproject
    assert 'repro = "repro.__main__:main"' in pyproject
