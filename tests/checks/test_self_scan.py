"""The analyzer's strongest regression test: the repo itself is clean.

Every invariant rule runs over the installed ``repro`` package; any new
unguarded reduction, unrouted GEMM, unlocked module mutation, or bare
print() introduced by a future change fails this test — the same signal
the CI ``lint`` job and the pre-commit hook enforce at the edges.
"""

from pathlib import Path

import repro
from repro import checks
from repro.checks.engine import SUP001, make_context

SRC = Path(repro.__file__).parent


def test_source_tree_is_clean():
    findings = checks.run([str(SRC)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repro check found violations:\n{rendered}"


def test_every_suppression_in_tree_is_justified():
    """Policy audit: no file carries a justification-less noqa."""
    for path in sorted(SRC.rglob("*.py")):
        ctx = make_context(path.read_text(encoding="utf-8"), str(path))
        assert not ctx.bad_suppressions, (
            f"{path}: noqa without justification at "
            f"line(s) {[s.line for s in ctx.bad_suppressions]}"
        )


def test_sup001_meta_rule_cannot_be_suppressed():
    # A malformed noqa cannot silence itself, even naming SUP001.
    findings = checks.run_source(
        "a = b @ c  # repro: noqa[DTY101,SUP001]\n"
    )
    assert SUP001 in [f.rule for f in findings]


def test_deep_self_scan_is_clean():
    """The whole-program analyses agree: no races, inversions, or
    exactness leaks across the real call graph (acceptance bar for
    ``repro check --deep src``)."""
    from repro.checks.analysis import run_deep

    result = run_deep([str(SRC)], cache_dir=None)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"deep scan found violations:\n{rendered}"


def test_registry_is_complete_and_well_formed():
    fams = checks.families()
    assert set(fams) == {"dtype", "threads", "obs", "numeric", "plan"}
    for family, ids in fams.items():
        assert len(ids) >= 3, f"family {family} has fewer than 3 rules"
    all_ids = [r.id for r in checks.iter_rules()]
    assert all_ids == sorted(all_ids)
    for r in checks.iter_rules():
        assert r.summary and r.invariant, f"{r.id} missing metadata"
