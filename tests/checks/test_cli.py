"""``repro check`` CLI: exit codes (0/1/2), formats, and dispatch wiring."""

import json

import pytest

from repro.checks.cli import main as check_main


@pytest.fixture
def clean_file(tmp_path):
    f = tmp_path / "clean.py"
    f.write_text("from repro.obs.log import console\nconsole('ok')\n")
    return f


@pytest.fixture
def dirty_file(tmp_path):
    f = tmp_path / "dirty.py"
    f.write_text("out = a @ b\nprint(out)\n")
    return f


class TestExitCodes:
    def test_zero_on_clean(self, clean_file, capsys):
        assert check_main([str(clean_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_one_on_findings(self, dirty_file, capsys):
        assert check_main([str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "DTY101" in out and "OBS301" in out

    def test_two_on_unknown_rule(self, clean_file, capsys):
        assert check_main([str(clean_file), "--rules", "BOGUS123"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_two_on_missing_path(self, capsys):
        assert check_main(["/no/such/path.py"]) == 2
        assert "error" in capsys.readouterr().err


class TestOutput:
    def test_json_format(self, dirty_file, capsys):
        assert check_main([str(dirty_file), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["findings"] == len(doc["findings"])
        assert doc["summary"]["by_rule"].get("DTY101") == 1
        first = doc["findings"][0]
        assert {"rule", "severity", "path", "line", "col", "message"} <= set(first)

    def test_rules_filter_narrows_scan(self, dirty_file, capsys):
        assert check_main([str(dirty_file), "--rules", "OBS301"]) == 1
        out = capsys.readouterr().out
        assert "OBS301" in out and "DTY101" not in out

    def test_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("DTY101", "THR201", "OBS301", "NUM401", "SUP001"):
            assert rid in out


class TestMainDispatch:
    def test_repro_main_exposes_check(self, dirty_file):
        from repro.__main__ import HANDLERS, build_parser, main

        assert "check" in HANDLERS
        parser = build_parser()
        args = parser.parse_args(["check", str(dirty_file)])
        assert args.command == "check"
        assert main(["check", str(dirty_file)]) == 1
