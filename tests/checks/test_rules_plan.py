"""PLN5xx fixtures: positive, negative, and noqa-suppressed snippets."""

import textwrap

from repro.checks.engine import run_source


def scan(src, **kw):
    return run_source(textwrap.dedent(src), **kw)


def rules_of(findings):
    return [f.rule for f in findings]


class TestPLN501AdhocColumnCache:
    def test_module_level_construction_flagged(self):
        src = """
        from repro.core.colcache import ColumnCache
        cache = ColumnCache(x, qp, 3, 1, 1, 2, True)
        """
        findings = scan(src)
        assert rules_of(findings) == ["PLN501"]
        assert "_build_cache" in findings[0].message

    def test_construction_in_hot_function_flagged(self):
        src = """
        from repro.core import colcache

        def run_layer(self, x):
            cache = colcache.ColumnCache(x, self.qp, 3, 1, 1, 2, True)
            return cache.cols
        """
        assert rules_of(scan(src)) == ["PLN501"]

    def test_fresh_cache_factory_is_clean(self):
        src = """
        from repro.core.colcache import ColumnCache

        class Executor:
            def _fresh_cache(self, x, compensate=None):
                return ColumnCache(x, self.qp, 3, 1, 1, 2, compensate)
        """
        assert scan(src) == []

    def test_sweep_cache_construction_is_clean(self):
        src = """
        from repro.core.colcache import SweepColumnCache

        def make_provider():
            return SweepColumnCache(capacity=4)
        """
        assert scan(src) == []

    def test_colcache_module_is_exempt(self):
        src = "cache = ColumnCache(x, qp, 3, 1, 1, 2, True)\n"
        assert scan(src, path="src/repro/core/colcache.py") == []

    def test_noqa_with_reason_suppresses(self):
        src = (
            "cache = ColumnCache(x, qp, 3, 1, 1, 2, True)"
            "  # repro: noqa[PLN501] — pure-function API, no provider exists\n"
        )
        assert scan(src) == []


class TestPLN502ExternalPlanStateMutation:
    def test_assignment_flagged(self):
        src = """
        def reset(engine):
            engine._active_plan = None
        """
        assert rules_of(scan(src)) == ["PLN502"]

    def test_mutating_method_flagged(self):
        src = """
        def nuke(engine):
            engine._plans.clear()
        """
        assert rules_of(scan(src)) == ["PLN502"]

    def test_del_flagged(self):
        src = """
        def evict(engine, key):
            del engine._plans[key]
        """
        assert rules_of(scan(src)) == ["PLN502"]

    def test_reads_are_clean(self):
        src = """
        def describe(engine):
            modes = sorted({p.mode for p in engine._plans.values()})
            return modes, engine._plans.get(("shape",))
        """
        assert scan(src) == []

    def test_pipeline_module_is_exempt(self):
        src = "self._plans.clear()\n"
        assert scan(src, path="src/repro/core/pipeline.py") == []


class TestPLN503ForwardShadowing:
    def test_attribute_assignment_flagged(self):
        src = """
        def hack(module, fn):
            module.forward = fn
        """
        assert rules_of(scan(src)) == ["PLN503"]

    def test_dict_assignment_flagged(self):
        src = """
        def hack(module, fn):
            module.__dict__["forward"] = fn
        """
        assert rules_of(scan(src)) == ["PLN503"]

    def test_class_forward_def_is_clean(self):
        src = """
        class Layer:
            def forward(self, x):
                return x
        """
        assert scan(src) == []

    def test_plan_tracer_is_exempt(self):
        src = 'module.__dict__["forward"] = traced\n'
        assert scan(src, path="src/repro/core/plan.py") == []
