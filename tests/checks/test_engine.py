"""Engine behaviour: suppression parsing, SUP001 policy, rule selection."""

import pytest

from repro import checks
from repro.checks.engine import make_context, run_source


def rules_of(findings):
    return [f.rule for f in findings]


class TestSuppressionParsing:
    def test_em_dash_justification(self):
        ctx = make_context("x = 1  # repro: noqa[DTY101] — operands are masks\n")
        assert 1 in ctx.suppressions
        sup = ctx.suppressions[1]
        assert sup.rule_ids == ("DTY101",)
        assert sup.justification == "operands are masks"
        assert not ctx.bad_suppressions

    def test_double_hyphen_and_colon_separators(self):
        for sep in ("--", ":"):
            ctx = make_context(f"x = 1  # repro: noqa[NUM402] {sep} denominator > 0\n")
            assert ctx.suppressions[1].justification == "denominator > 0"

    def test_multiple_rule_ids(self):
        ctx = make_context("x = 1  # repro: noqa[DTY101, THR201] — startup only\n")
        assert ctx.suppressions[1].rule_ids == ("DTY101", "THR201")

    def test_noqa_inside_string_literal_is_ignored(self):
        ctx = make_context('s = "# repro: noqa[DTY101]"\n')
        assert not ctx.suppressions
        assert not ctx.bad_suppressions

    def test_missing_justification_is_malformed(self):
        ctx = make_context("x = 1  # repro: noqa[DTY101]\n")
        assert not ctx.suppressions
        assert len(ctx.bad_suppressions) == 1


class TestSup001Policy:
    def test_justification_less_noqa_raises_sup001(self):
        findings = run_source("a = b @ c  # repro: noqa[DTY101]\n")
        assert "SUP001" in rules_of(findings)
        # The underlying finding is NOT suppressed by a malformed noqa.
        assert "DTY101" in rules_of(findings)

    def test_justified_noqa_suppresses(self):
        findings = run_source(
            "a = b @ c  # repro: noqa[DTY101] — routed via Tensor.__matmul__\n"
        )
        assert findings == []

    def test_noqa_only_suppresses_named_rule(self):
        src = "a = b @ c  # repro: noqa[THR201] — wrong rule named\n"
        findings = run_source(src)
        assert "DTY101" in rules_of(findings)


class TestDecoratorLineScope:
    """A noqa's scope is the physical line only — never the decorated body.

    Pins :func:`repro.checks.engine.suppression_covers`: a suppression on
    a decorator line must not leak onto the ``def`` line or into the
    function body (a decorator is lexically adjacent to, but distinct
    from, the statements it wraps).
    """

    def test_noqa_on_decorator_does_not_cover_body(self):
        src = (
            "@register  # repro: noqa[DTY101] — decorator-line comment\n"
            "def f(a, b):\n"
            "    return a @ b\n"
        )
        findings = run_source(src)
        assert rules_of(findings) == ["DTY101"]
        assert findings[0].line == 3

    def test_noqa_on_decorator_does_not_cover_def_line(self):
        # DTY101 would anchor at the matmul on the def line's default.
        src = (
            "@register  # repro: noqa[DTY101] — decorator-line comment\n"
            "def f(x=a @ b):\n"
            "    return x\n"
        )
        findings = run_source(src)
        assert "DTY101" in rules_of(findings)

    def test_noqa_on_offending_line_inside_decorated_body_works(self):
        src = (
            "@register\n"
            "def f(a, b):\n"
            "    return a @ b  # repro: noqa[DTY101] — operands are bool masks\n"
        )
        assert run_source(src) == []

    def test_suppression_covers_is_exact_line_keyed(self):
        from repro.checks.engine import suppression_covers
        from repro.checks.findings import Finding, Severity

        ctx = make_context(
            "@register  # repro: noqa[DTY101] — here only\n"
            "def f():\n"
            "    pass\n"
        )

        def finding_at(line):
            return Finding(
                rule="DTY101", severity=Severity.ERROR, path=ctx.path,
                line=line, col=0, message="probe",
            )

        assert suppression_covers(ctx.suppressions, finding_at(1))
        assert not suppression_covers(ctx.suppressions, finding_at(2))
        assert not suppression_covers(ctx.suppressions, finding_at(3))


class TestRuleSelection:
    def test_rules_filter(self):
        src = "import numpy as np\na = np.matmul(b, c)\nprint(a)\n"
        only_obs = run_source(src, rules=["OBS301"])
        assert rules_of(only_obs) == ["OBS301"]
        both = run_source(src)
        assert {"DTY101", "OBS301"} <= set(rules_of(both))

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            run_source("x = 1\n", rules=["NOPE999"])

    def test_exempt_path_skips_rule(self):
        src = "a = b @ c\n"
        assert rules_of(run_source(src, path="src/repro/core/gemm.py")) == []
        assert rules_of(run_source(src, path="src/repro/core/odq.py")) == ["DTY101"]


class TestParseErrors:
    def test_syntax_error_becomes_parse_finding(self):
        findings = run_source("def broken(:\n")
        assert rules_of(findings) == ["PARSE000"]


class TestPublicApi:
    def test_run_accepts_single_path_string(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("a = b @ c\n")
        findings = checks.run(str(f))
        assert rules_of(findings) == ["DTY101"]
        assert findings[0].path.endswith("mod.py")

    def test_run_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            checks.run(["/nonexistent/dir/xyz"])

    def test_findings_are_sorted_and_serializable(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("print(1)\na = b @ c\n")
        findings = checks.run([str(tmp_path)])
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        d = findings[0].as_dict()
        assert {"rule", "severity", "path", "line", "col", "message"} <= set(d)
