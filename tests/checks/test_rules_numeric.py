"""NUM4xx fixtures: positive, negative, and noqa-suppressed snippets."""

import textwrap

from repro.checks.engine import run_source


def scan(src, **kw):
    return run_source(textwrap.dedent(src), **kw)


def rules_of(findings):
    return [f.rule for f in findings]


class TestNUM401UnguardedReduction:
    def test_percentile_without_guard_flagged(self):
        src = """
        import numpy as np

        def scale(w):
            return np.percentile(np.abs(w), 99.9)
        """
        assert rules_of(scan(src)) == ["NUM401"]

    def test_masked_mean_without_guard_flagged(self):
        src = """
        def err_stat(err, sens):
            return err[sens].mean()
        """
        assert rules_of(scan(src)) == ["NUM401"]

    def test_size_guard_is_clean(self):
        src = """
        import numpy as np

        def scale(w):
            if w.size == 0:
                raise ValueError("empty")
            return np.percentile(np.abs(w), 99.9)
        """
        assert scan(src) == []

    def test_any_guard_is_clean(self):
        src = """
        def err_stat(err, sens):
            if not sens.any():
                return 0.0
            return err[sens].mean()
        """
        assert scan(src) == []

    def test_noqa_suppresses(self):
        src = """
        def batch_std(result):
            return result["full"].std()  # repro: noqa[NUM401] — dense output, never empty
        """
        assert scan(src) == []


class TestNUM402UnguardedDivision:
    def test_division_by_len_flagged(self):
        src = """
        def accuracy(correct, x):
            return correct / len(x)
        """
        assert rules_of(scan(src)) == ["NUM402"]

    def test_division_by_size_and_sum_flagged(self):
        src = """
        def fractions(mask):
            a = mask.sum() / mask.size
            return a
        """
        # Denominator `.size` is flagged; the `.sum()` here is a numerator.
        assert rules_of(scan(src)) == ["NUM402"]

    def test_guarded_division_is_clean(self):
        src = """
        def accuracy(correct, x):
            if len(x) == 0:
                raise ValueError("empty dataset")
            return correct / len(x)
        """
        assert scan(src) == []

    def test_ternary_max_style_guard_is_clean(self):
        src = """
        def share(hits, total):
            return hits / total.size if total.size else 0.0
        """
        assert scan(src) == []

    def test_noqa_suppresses(self):
        src = """
        def softmax_norm(e):
            return e / e.sum()  # repro: noqa[NUM402] — sum of exp() is strictly positive
        """
        assert scan(src) == []


class TestNUM403RatioCompareWithoutErrstate:
    def test_ratio_compare_flagged(self):
        src = """
        def mask(err, ref, t):
            return err / ref > t
        """
        assert rules_of(scan(src)) == ["NUM403"]

    def test_errstate_wrapped_is_clean(self):
        src = """
        import numpy as np

        def mask(err, ref, t):
            with np.errstate(divide="ignore", invalid="ignore"):
                m = err / ref > t
            return np.nan_to_num(m)
        """
        assert scan(src) == []

    def test_plain_compare_is_clean(self):
        assert scan("def f(a, t):\n    return a > t\n") == []
