"""THR2xx fixtures: positive, negative, and noqa-suppressed snippets."""

import textwrap

from repro.checks.engine import run_source


def scan(src, **kw):
    return run_source(textwrap.dedent(src), **kw)


def rules_of(findings):
    return [f.rule for f in findings]


class TestTHR201UnlockedModuleState:
    def test_dict_mutation_in_function_flagged(self):
        src = """
        _CACHE = {}

        def put(k, v):
            _CACHE[k] = v
        """
        findings = scan(src)
        assert rules_of(findings) == ["THR201"]
        assert "_CACHE" in findings[0].message

    def test_augassign_and_mutator_methods_flagged(self):
        src = """
        _ITEMS = []
        _COUNT = compute()

        def bump():
            global _COUNT
            _COUNT += 1
            _ITEMS.append(1)
        """
        assert rules_of(scan(src)) == ["THR201", "THR201"]

    def test_mutation_under_lock_is_clean(self):
        src = """
        import threading

        _CACHE = {}
        _LOCK = threading.Lock()

        def put(k, v):
            with _LOCK:
                _CACHE[k] = v
        """
        assert scan(src) == []

    def test_import_time_initialization_is_clean(self):
        src = """
        _TABLE = {}
        _TABLE["a"] = 1
        """
        assert scan(src) == []

    def test_immutable_factories_not_tracked(self):
        src = """
        import re
        _RE = re.compile("x")
        _NAMES = frozenset({"a"})

        def touch():
            return _RE, _NAMES
        """
        assert scan(src) == []

    def test_noqa_suppresses(self):
        src = """
        _STATS = {}

        def record(k):
            _STATS[k] = 1  # repro: noqa[THR201] — written before threads start
        """
        assert scan(src) == []


class TestTHR202BareAcquire:
    def test_bare_acquire_flagged(self):
        src = """
        def f(lock):
            lock.acquire()
            work()
            lock.release()
        """
        assert rules_of(scan(src)) == ["THR202"]

    def test_acquire_with_try_finally_is_clean(self):
        src = """
        def f(lock):
            lock.acquire()
            try:
                work()
            finally:
                lock.release()
        """
        assert scan(src) == []

    def test_with_lock_is_clean(self):
        src = """
        def f(lock):
            with lock:
                work()
        """
        assert scan(src) == []

    def test_non_lock_acquire_ignored(self):
        # `.acquire()` on something that is not lock-named (e.g. a
        # connection pool) is out of scope for this rule.
        assert scan("def f(conn):\n    conn.acquire()\n") == []


class TestTHR203PoolForkSafety:
    def test_module_global_pool_flagged(self):
        src = """
        from concurrent.futures import ThreadPoolExecutor

        _POOL = None

        def get_pool():
            global _POOL
            _POOL = ThreadPoolExecutor(max_workers=4)
            return _POOL
        """
        assert rules_of(scan(src)) == ["THR203"]

    def test_pid_keyed_rebuild_is_clean(self):
        src = """
        import os
        from concurrent.futures import ThreadPoolExecutor

        _POOL = None
        _POOL_PID = None

        def get_pool():
            global _POOL, _POOL_PID
            if _POOL is None or _POOL_PID != os.getpid():
                _POOL = ThreadPoolExecutor(max_workers=4)
                _POOL_PID = os.getpid()
            return _POOL
        """
        assert scan(src) == []

    def test_function_local_pool_is_clean(self):
        src = """
        from concurrent.futures import ThreadPoolExecutor

        def run(tasks):
            pool = ThreadPoolExecutor(max_workers=2)
            return [pool.submit(t) for t in tasks]
        """
        assert scan(src) == []


class TestTHR204SharedMemoryLifecycle:
    def test_bare_acquisition_flagged(self):
        src = """
        from multiprocessing.shared_memory import SharedMemory

        def leak():
            shm = SharedMemory(create=True, size=64)
            return shm.buf
        """
        findings = scan(src)
        assert rules_of(findings) == ["THR204"]
        assert "close()" in findings[0].message

    def test_try_finally_close_is_clean(self):
        src = """
        from multiprocessing.shared_memory import SharedMemory

        def use():
            shm = SharedMemory(create=True, size=64)
            try:
                work(shm.buf)
            finally:
                shm.close()
                shm.unlink()
        """
        assert scan(src) == []

    def test_with_block_is_clean(self):
        # contextlib.closing (or any with wrapping the call) is the
        # canonical scoped form.
        src = """
        from contextlib import closing
        from multiprocessing.shared_memory import SharedMemory

        def use():
            with closing(SharedMemory(create=True, size=64)) as shm:
                work(shm.buf)
        """
        assert scan(src) == []

    def test_close_owning_class_is_clean(self):
        # The resource-owner pattern: the attribute's class exposes the
        # close() that releases the segment (repro.cluster.shm.ShmSegment).
        src = """
        from multiprocessing.shared_memory import SharedMemory

        class Segment:
            def __init__(self, size):
                self._shm = SharedMemory(create=True, size=size)

            def close(self):
                self._shm.close()
        """
        assert scan(src) == []

    def test_class_without_close_still_flagged(self):
        src = """
        from multiprocessing.shared_memory import SharedMemory

        class Holder:
            def __init__(self, size):
                self._shm = SharedMemory(create=True, size=size)
        """
        assert rules_of(scan(src)) == ["THR204"]

    def test_noqa_suppresses(self):
        src = """
        from multiprocessing.shared_memory import SharedMemory

        def probe(name):
            shm = SharedMemory(name=name)  # repro: noqa[THR204] — closed by caller
            return shm
        """
        assert scan(src) == []
