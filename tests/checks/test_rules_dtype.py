"""DTY1xx fixtures: positive, negative, and noqa-suppressed snippets."""

import textwrap

from repro.checks.engine import run_source


def scan(src, **kw):
    return run_source(textwrap.dedent(src), **kw)


def rules_of(findings):
    return [f.rule for f in findings]


class TestDTY101UnroutedGemm:
    def test_matmul_operator_flagged(self):
        findings = scan("out = a @ b\n")
        assert rules_of(findings) == ["DTY101"]
        assert "pgemm" in findings[0].message

    def test_np_matmul_and_dot_flagged(self):
        src = """
        import numpy as np
        x = np.matmul(a, b)
        y = np.dot(a, b)
        """
        assert rules_of(scan(src)) == ["DTY101", "DTY101"]

    def test_pgemm_call_is_clean(self):
        src = """
        from repro.core.gemm import pgemm
        out = pgemm(a, b)
        """
        assert scan(src) == []

    def test_gemm_module_is_exempt(self):
        assert scan("out = a @ b\n", path="src/repro/core/gemm.py") == []

    def test_noqa_suppresses(self):
        src = "out = x @ w  # repro: noqa[DTY101] — Tensor @ dispatches to pgemm\n"
        assert scan(src) == []


class TestDTY102AstypeDowncast:
    def test_string_dtype_flagged(self):
        findings = scan("q = acc.astype('float32')\n")
        assert rules_of(findings) == ["DTY102"]

    def test_np_attribute_dtype_flagged(self):
        src = """
        import numpy as np
        q = acc.astype(np.int32)
        """
        assert rules_of(scan(src)) == ["DTY102"]

    def test_wide_dtypes_clean(self):
        src = """
        import numpy as np
        a = x.astype(np.float64)
        b = x.astype('int64')
        c = x.astype(np.uint64)
        """
        assert scan(src) == []

    def test_noqa_suppresses(self):
        src = "img = frame.astype('uint8')  # repro: noqa[DTY102] — display-only buffer\n"
        assert scan(src) == []


class TestDTY103BitplaneFloatArith:
    def test_fractional_constant_times_plane_flagged(self):
        findings = scan("out = q_high * 0.5\n")
        assert rules_of(findings) == ["DTY103"]

    def test_division_on_plane_flagged(self):
        assert rules_of(scan("out = cols_low / n\n")) == ["DTY103"]

    def test_integral_scale_is_clean(self):
        # Shifting planes by exact powers of two keeps integers exact.
        assert scan("out = q_high * 4.0 + q_low\n") == []

    def test_unrelated_names_clean(self):
        assert scan("ratio = images * 0.5\n") == []

    def test_noqa_suppresses(self):
        src = "deq = qw * 0.25  # repro: noqa[DTY103] — explicit dequantize scale\n"
        assert scan(src) == []
