"""Call-graph upgrades of the shallow rules under --deep.

THR201 (unlocked mutation) is dropped when the mutating function's
must-hold entry lockset proves a caller always holds the lock; THR203
(pool without fork guard) is dropped when a transitive caller carries
the ``os.getpid()`` probe.  Each upgrade has a negative twin proving the
finding survives when the call-graph fact is absent.
"""

import textwrap

import pytest

from repro.checks.analysis import run_deep


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "demo"
    pkg.mkdir(parents=True)
    return pkg


def _scan(tree, source: str) -> list:
    (tree / "mod.py").write_text(textwrap.dedent(source))
    result = run_deep([str(tree)], cache_dir=None)
    return result.findings


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


class TestThr201Upgrade:
    def test_helper_locked_by_every_caller_is_dropped(self, tree):
        findings = _scan(tree, """
        import threading

        _lock = threading.Lock()
        _stats = {}


        def _bump(key):
            _stats[key] = _stats.get(key, 0) + 1


        def record(key):
            with _lock:
                _bump(key)


        def record_pair(a, b):
            with _lock:
                _bump(a)
                _bump(b)
        """)
        assert "THR201" not in rules_of(findings)

    def test_one_unlocked_caller_keeps_the_finding(self, tree):
        findings = _scan(tree, """
        import threading

        _lock = threading.Lock()
        _stats = {}


        def _bump(key):
            _stats[key] = _stats.get(key, 0) + 1


        def record(key):
            with _lock:
                _bump(key)


        def record_fast(key):
            _bump(key)
        """)
        assert "THR201" in rules_of(findings)

    def test_public_helper_keeps_the_finding(self, tree):
        # Public names are pinned to an empty entry lockset — callers
        # outside the analyzed tree may reach them unlocked.
        findings = _scan(tree, """
        import threading

        _lock = threading.Lock()
        _stats = {}


        def bump(key):
            _stats[key] = _stats.get(key, 0) + 1


        def record(key):
            with _lock:
                bump(key)
        """)
        assert "THR201" in rules_of(findings)


class TestThr203Upgrade:
    def test_caller_with_getpid_guard_is_dropped(self, tree):
        findings = _scan(tree, """
        import os
        from concurrent.futures import ThreadPoolExecutor

        _POOL = None
        _POOL_PID = None


        def _make_pool():
            global _POOL
            _POOL = ThreadPoolExecutor(max_workers=4)
            return _POOL


        def get_pool():
            global _POOL_PID
            if _POOL is None or _POOL_PID != os.getpid():
                _POOL_PID = os.getpid()
                return _make_pool()
            return _POOL
        """)
        assert "THR203" not in rules_of(findings)

    def test_no_guard_anywhere_keeps_the_finding(self, tree):
        findings = _scan(tree, """
        from concurrent.futures import ThreadPoolExecutor

        _POOL = None


        def _make_pool():
            global _POOL
            _POOL = ThreadPoolExecutor(max_workers=4)
            return _POOL


        def get_pool():
            if _POOL is None:
                return _make_pool()
            return _POOL
        """)
        assert "THR203" in rules_of(findings)
