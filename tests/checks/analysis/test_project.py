"""Symbol table, call resolution, and call-graph facts."""

from repro.checks.analysis import CallGraph, Project
from repro.checks.analysis.project import FunctionRef, module_name_for


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/core/gemm.py") == "repro.core.gemm"

    def test_init_maps_to_package(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_no_src_marker(self):
        assert module_name_for("repro/serve/http.py") == "repro.serve.http"


def build(sources):
    project = Project.from_sources(sources)
    return project, CallGraph.build(project)


class TestCallResolution:
    def test_local_function_call(self):
        project, graph = build(
            {
                "src/repro/demo/m.py": (
                    "def helper():\n"
                    "    pass\n"
                    "\n"
                    "def caller():\n"
                    "    helper()\n"
                ),
            }
        )
        assert any(
            e.caller == "repro.demo.m.caller" and e.callee == "repro.demo.m.helper"
            for e in graph.edges
        )

    def test_from_import_call(self):
        project, graph = build(
            {
                "src/repro/demo/a.py": "def target():\n    pass\n",
                "src/repro/demo/b.py": (
                    "from repro.demo.a import target\n"
                    "\n"
                    "def caller():\n"
                    "    target()\n"
                ),
            }
        )
        assert any(
            e.caller == "repro.demo.b.caller" and e.callee == "repro.demo.a.target"
            for e in graph.edges
        )

    def test_module_alias_attribute_call(self):
        project, graph = build(
            {
                "src/repro/demo/a.py": "def target():\n    pass\n",
                "src/repro/demo/b.py": (
                    "import repro.demo.a as util\n"
                    "\n"
                    "def caller():\n"
                    "    util.target()\n"
                ),
            }
        )
        assert any(e.callee == "repro.demo.a.target" for e in graph.edges)

    def test_self_method_call(self):
        project, graph = build(
            {
                "src/repro/demo/c.py": (
                    "class Worker:\n"
                    "    def _run(self):\n"
                    "        pass\n"
                    "\n"
                    "    def start(self):\n"
                    "        self._run()\n"
                ),
            }
        )
        assert any(
            e.caller == "repro.demo.c.Worker.start"
            and e.callee == "repro.demo.c.Worker._run"
            for e in graph.edges
        )

    def test_self_attr_method_call_via_attr_types(self):
        project, graph = build(
            {
                "src/repro/demo/c.py": (
                    "class Engine:\n"
                    "    def infer(self):\n"
                    "        pass\n"
                    "\n"
                    "class Server:\n"
                    "    def __init__(self):\n"
                    "        self.engine = Engine()\n"
                    "\n"
                    "    def handle(self):\n"
                    "        self.engine.infer()\n"
                ),
            }
        )
        assert any(
            e.caller == "repro.demo.c.Server.handle"
            and e.callee == "repro.demo.c.Engine.infer"
            for e in graph.edges
        )

    def test_method_resolution_through_base_class(self):
        project, graph = build(
            {
                "src/repro/demo/c.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        pass\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def go(self):\n"
                    "        self.shared()\n"
                ),
            }
        )
        assert any(
            e.caller == "repro.demo.c.Child.go"
            and e.callee == "repro.demo.c.Base.shared"
            for e in graph.edges
        )


class TestThreadRoots:
    def test_thread_target_resolved(self):
        _, graph = build(
            {
                "src/repro/demo/t.py": (
                    "import threading\n"
                    "\n"
                    "def loop():\n"
                    "    pass\n"
                    "\n"
                    "def start():\n"
                    "    threading.Thread(target=loop, daemon=True).start()\n"
                ),
            }
        )
        roots = [(r.kind, r.target, r.resolved) for r in graph.roots]
        assert roots == [("thread", "repro.demo.t.loop", True)]

    def test_unresolved_thread_target_kept_as_pseudo_root(self):
        _, graph = build(
            {
                "src/repro/demo/t.py": (
                    "import threading\n"
                    "\n"
                    "class S:\n"
                    "    def start(self):\n"
                    "        threading.Thread(target=self._httpd.serve_forever).start()\n"
                ),
            }
        )
        assert len(graph.roots) == 1
        r = graph.roots[0]
        assert not r.resolved
        assert "serve_forever" in r.target

    def test_unresolved_submit_arg_is_not_a_root(self):
        # The project's own Batcher.submit(arr) takes data, not a
        # callable — an unresolvable first arg must not become a root.
        _, graph = build(
            {
                "src/repro/demo/t.py": (
                    "def handle(batcher, arr):\n"
                    "    return batcher.submit(arr)\n"
                ),
            }
        )
        assert graph.roots == []

    def test_resolved_submit_arg_is_a_root(self):
        _, graph = build(
            {
                "src/repro/demo/t.py": (
                    "def work(block):\n"
                    "    pass\n"
                    "\n"
                    "def fan_out(pool, blocks):\n"
                    "    return [pool.submit(work, b) for b in blocks]\n"
                ),
            }
        )
        assert [(r.kind, r.target) for r in graph.roots] == [
            ("submit", "repro.demo.t.work")
        ]

    def test_process_target_discovered(self):
        _, graph = build(
            {
                "src/repro/demo/w.py": "def replica_main(cfg):\n    pass\n",
                "src/repro/demo/sup.py": (
                    "import multiprocessing as mp\n"
                    "\n"
                    "from repro.demo.w import replica_main\n"
                    "\n"
                    "def spawn(cfg):\n"
                    "    mp.Process(target=replica_main, args=(cfg,)).start()\n"
                ),
            }
        )
        assert [(r.kind, r.target, r.resolved) for r in graph.roots] == [
            ("process", "repro.demo.w.replica_main", True)
        ]


class TestEntryLocksets:
    SRC = (
        "import threading\n"
        "\n"
        "_lock = threading.Lock()\n"
        "\n"
        "\n"
        "def _helper():\n"
        "    pass\n"
        "\n"
        "\n"
        "def locked_caller():\n"
        "    with _lock:\n"
        "        _helper()\n"
        "\n"
        "\n"
        "def other_locked_caller():\n"
        "    with _lock:\n"
        "        _helper()\n"
    )

    def test_must_hold_intersection(self):
        _, graph = build({"src/repro/demo/e.py": self.SRC})
        assert graph.entry_lockset("repro.demo.e._helper") == {
            "repro.demo.e._lock"
        }

    def test_public_function_pinned_to_empty(self):
        # A public name is callable from anywhere — never assume locks.
        src = self.SRC.replace("_helper", "helper")
        _, graph = build({"src/repro/demo/e.py": src})
        assert graph.entry_lockset("repro.demo.e.helper") == frozenset()

    def test_one_unlocked_caller_clears_the_set(self):
        src = self.SRC + "\n\ndef unlocked_caller():\n    _helper()\n"
        _, graph = build({"src/repro/demo/e.py": src})
        assert graph.entry_lockset("repro.demo.e._helper") == frozenset()

    def test_reachability_from_roots(self):
        src = (
            "import threading\n"
            "\n"
            "def _leaf():\n"
            "    pass\n"
            "\n"
            "def _mid():\n"
            "    _leaf()\n"
            "\n"
            "def start():\n"
            "    threading.Thread(target=_mid).start()\n"
        )
        _, graph = build({"src/repro/demo/r.py": src})
        assert graph.roots_reaching("repro.demo.r._leaf") == {"repro.demo.r._mid"}
        assert graph.roots_reaching("repro.demo.r.start") == set()


class TestEnclosingFunction:
    def test_innermost_span_wins(self):
        src = (
            "class C:\n"
            "    def meth(self):\n"
            "        x = 1\n"
            "        return x\n"
            "\n"
            "def free():\n"
            "    pass\n"
        )
        project = Project.from_sources({"src/repro/demo/s.py": src})
        ref = project.enclosing_function("src/repro/demo/s.py", 3)
        assert ref == FunctionRef("repro.demo.s", "C.meth")
        ref = project.enclosing_function("src/repro/demo/s.py", 7)
        assert ref == FunctionRef("repro.demo.s", "free")
        assert project.enclosing_function("src/repro/demo/s.py", 999) is None
