"""Content-addressed summary cache: hits, invalidation, warm-run speed."""

import ast
import json
import time

from repro.checks.analysis.cache import SummaryCache, source_digest
from repro.checks.analysis.summary import SUMMARY_VERSION, summarize
from repro.checks.analysis import run_deep


SRC_A = "def f():\n    pass\n"
SRC_B = "def f():\n    return 1\n"


def summary_for(source, module="repro.demo.m", path="src/repro/demo/m.py"):
    return summarize(module, path, ast.parse(source))


class TestSummaryCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"))
        assert cache.get(SRC_A) is None
        cache.put(SRC_A, summary_for(SRC_A))
        got = cache.get(SRC_A)
        assert got is not None
        assert got.module == "repro.demo.m"
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_content_addressed_by_source(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"))
        cache.put(SRC_A, summary_for(SRC_A))
        # A one-character edit is a different address: no stale summary.
        assert cache.get(SRC_B) is None
        assert source_digest(SRC_A) != source_digest(SRC_B)

    def test_version_bump_invalidates(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"))
        cache.put(SRC_A, summary_for(SRC_A))
        entry = next((tmp_path / "cache").glob("*.json"))
        doc = json.loads(entry.read_text())
        doc["version"] = SUMMARY_VERSION - 1
        entry.write_text(json.dumps(doc))
        assert cache.get(SRC_A) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache"))
        cache.put(SRC_A, summary_for(SRC_A))
        entry = next((tmp_path / "cache").glob("*.json"))
        entry.write_text("{not json")
        assert cache.get(SRC_A) is None


class TestWarmRuns:
    def _tree(self, tmp_path, n=12):
        pkg = tmp_path / "src" / "repro" / "demo"
        pkg.mkdir(parents=True)
        for i in range(n):
            (pkg / f"m{i}.py").write_text(
                f"def f{i}(x):\n    return x + {i}\n"
            )
        return str(tmp_path / "src")

    def test_second_run_is_all_hits(self, tmp_path, monkeypatch):
        root = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cache_dir = str(tmp_path / ".repro-check-cache")
        first = run_deep([root], cache_dir=cache_dir)
        assert first.cache_stats["misses"] > 0
        second = run_deep([root], cache_dir=cache_dir)
        assert second.cache_stats["misses"] == 0
        assert second.cache_stats["hits"] == first.cache_stats["misses"]

    def test_editing_one_file_reparses_only_it(self, tmp_path, monkeypatch):
        root = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cache_dir = str(tmp_path / ".repro-check-cache")
        run_deep([root], cache_dir=cache_dir)
        (tmp_path / "src" / "repro" / "demo" / "m0.py").write_text(
            "def f0(x):\n    return x - 1\n"
        )
        result = run_deep([root], cache_dir=cache_dir)
        assert result.cache_stats["misses"] == 1

    def test_warm_incremental_run_is_fast(self, tmp_path, monkeypatch):
        # The acceptance bar is <2s on the real tree; a small fixture
        # tree warm run must come in far under that.
        root = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cache_dir = str(tmp_path / ".repro-check-cache")
        run_deep([root], cache_dir=cache_dir)
        t0 = time.perf_counter()
        result = run_deep([root], cache_dir=cache_dir)
        elapsed = time.perf_counter() - t0
        assert result.cache_stats["misses"] == 0
        assert elapsed < 2.0

    def test_no_cache_dir_disables_caching(self, tmp_path, monkeypatch):
        root = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        result = run_deep([root], cache_dir=None)
        assert result.cache_stats == {}
        assert not (tmp_path / ".repro-check-cache").exists()
