"""Deep-rule fixtures: every positive has a negative twin.

THR210 — inconsistent lockset on shared mutable state.
THR211 — lock-order inversion (ABBA).
DTY110 — exactness taint reaching a GEMM operand across functions.
"""

from repro.checks.analysis import run_deep_sources


def rules_of(findings):
    return [f.rule for f in findings]


THREADING_HEADER = """
import threading

_lock = threading.Lock()
"""


class TestThr210:
    def test_two_roots_one_unlocked_writer_fires(self):
        src = THREADING_HEADER + """
_counter = 0


def locked_bump():
    global _counter
    with _lock:
        _counter += 1


def unlocked_bump():
    global _counter
    _counter += 1


def start():
    threading.Thread(target=locked_bump).start()
    threading.Thread(target=unlocked_bump).start()
"""
        findings = run_deep_sources({"src/repro/demo/state.py": src})
        assert rules_of(findings) == ["THR210"]
        f = findings[0]
        # Anchored at the least-protected write (the unlocked one).
        assert "this write holds {} (none)" in f.message
        assert f.snippet == "" or "with _lock" not in f.snippet
        assert "_counter" in f.message
        assert "no common lock" in f.message

    def test_both_writers_locked_is_clean(self):
        src = THREADING_HEADER + """
_counter = 0


def bump_a():
    global _counter
    with _lock:
        _counter += 1


def bump_b():
    global _counter
    with _lock:
        _counter += 2


def start():
    threading.Thread(target=bump_a).start()
    threading.Thread(target=bump_b).start()
"""
        assert run_deep_sources({"src/repro/demo/state.py": src}) == []

    def test_single_root_without_main_writer_is_clean(self):
        # One thread root, no main-path writer: no concurrency, no race.
        src = THREADING_HEADER + """
_counter = 0


def bump():
    global _counter
    _counter += 1


def start():
    threading.Thread(target=bump).start()
"""
        assert run_deep_sources({"src/repro/demo/state.py": src}) == []

    def test_root_plus_main_writer_fires(self):
        src = THREADING_HEADER + """
_counter = 0


def bump():
    global _counter
    _counter += 1


def main_path_reset():
    global _counter
    _counter = 0


def start():
    threading.Thread(target=bump).start()
"""
        findings = run_deep_sources({"src/repro/demo/state.py": src})
        assert rules_of(findings) == ["THR210"]
        assert "main" in findings[0].message

    def test_entry_lockset_covers_helper_called_under_lock(self):
        # The helper writes without a lock in sight, but every resolved
        # caller holds it — the must-hold entry lockset covers the write.
        src = THREADING_HEADER + """
_table = {}


def _store(k, v):
    _table[k] = v


def writer_a():
    with _lock:
        _store("a", 1)


def writer_b():
    with _lock:
        _store("b", 2)


def start():
    threading.Thread(target=writer_a).start()
    threading.Thread(target=writer_b).start()
"""
        assert run_deep_sources({"src/repro/demo/state.py": src}) == []

    def test_one_unlocked_call_path_defeats_entry_lockset(self):
        src = THREADING_HEADER + """
_table = {}


def _store(k, v):
    _table[k] = v


def writer_a():
    with _lock:
        _store("a", 1)


def writer_b():
    _store("b", 2)


def start():
    threading.Thread(target=writer_a).start()
    threading.Thread(target=writer_b).start()
"""
        findings = run_deep_sources({"src/repro/demo/state.py": src})
        assert rules_of(findings) == ["THR210"]

    def test_cross_module_write_sites(self):
        # Writers live in a different module from the spawner; the race
        # is only visible with project-wide resolution.
        writers = THREADING_HEADER + """
_registry = {}


def locked_put(k, v):
    with _lock:
        _registry[k] = v


def unlocked_put(k, v):
    _registry[k] = v
"""
        spawner = """
import threading

from repro.demo.writers import locked_put, unlocked_put


def start():
    threading.Thread(target=locked_put).start()
    threading.Thread(target=unlocked_put).start()
"""
        findings = run_deep_sources(
            {
                "src/repro/demo/writers.py": writers,
                "src/repro/demo/spawn.py": spawner,
            }
        )
        assert rules_of(findings) == ["THR210"]
        assert findings[0].path == "src/repro/demo/writers.py"

    def test_deep_finding_respects_noqa(self):
        src = THREADING_HEADER + """
_counter = 0


def locked_bump():
    global _counter
    with _lock:
        _counter += 1


def unlocked_bump():
    global _counter
    _counter += 1  # repro: noqa[THR210] — benign stat, torn reads accepted


def start():
    threading.Thread(target=locked_bump).start()
    threading.Thread(target=unlocked_bump).start()
"""
        assert run_deep_sources({"src/repro/demo/state.py": src}) == []


LOCKS_HEADER = """
import threading

_a = threading.Lock()
_b = threading.Lock()
"""


class TestThr211:
    def test_direct_abba_fires(self):
        src = LOCKS_HEADER + """
def forward():
    with _a:
        with _b:
            pass


def backward():
    with _b:
        with _a:
            pass
"""
        findings = run_deep_sources({"src/repro/demo/locks.py": src})
        assert rules_of(findings) == ["THR211"]
        assert "lock-order inversion" in findings[0].message
        assert "_a" in findings[0].message and "_b" in findings[0].message

    def test_consistent_order_is_clean(self):
        src = LOCKS_HEADER + """
def forward():
    with _a:
        with _b:
            pass


def also_forward():
    with _a:
        with _b:
            pass
"""
        assert run_deep_sources({"src/repro/demo/locks.py": src}) == []

    def test_abba_through_call_chain_fires(self):
        # Neither function nests two `with` blocks; the inversion only
        # exists through the calls made while a lock is held.
        src = LOCKS_HEADER + """
def take_b():
    with _b:
        pass


def take_a():
    with _a:
        pass


def forward():
    with _a:
        take_b()


def backward():
    with _b:
        take_a()
"""
        findings = run_deep_sources({"src/repro/demo/locks.py": src})
        assert rules_of(findings) == ["THR211"]

    def test_call_chain_consistent_order_is_clean(self):
        src = LOCKS_HEADER + """
def take_b():
    with _b:
        pass


def forward():
    with _a:
        take_b()


def also_forward():
    with _a:
        take_b()
"""
        assert run_deep_sources({"src/repro/demo/locks.py": src}) == []

    def test_single_lock_reentry_not_reported(self):
        # A -> A is not an inversion (RLock reentry / sequential blocks).
        src = LOCKS_HEADER + """
def f():
    with _a:
        pass
    with _a:
        pass
"""
        assert run_deep_sources({"src/repro/demo/locks.py": src}) == []

    def test_one_finding_per_distinct_cycle(self):
        src = LOCKS_HEADER + """
def forward():
    with _a:
        with _b:
            pass


def backward():
    with _b:
        with _a:
            pass


def backward_again():
    with _b:
        with _a:
            pass
"""
        findings = run_deep_sources({"src/repro/demo/locks.py": src})
        assert rules_of(findings) == ["THR211"]


GEMM_IMPORT = """
import numpy as np

from repro.core.gemm import pgemm
"""


class TestDty110:
    def test_narrowed_return_value_reaching_gemm_fires(self):
        src = GEMM_IMPORT + """
def prep(x):
    q = quantize_tensor(x)
    return q.astype(np.float32)


def run(x, w):
    a = prep(x)
    return pgemm(a, w)
"""
        findings = run_deep_sources({"src/repro/demo/flow.py": src})
        assert rules_of(findings) == ["DTY110"]
        f = findings[0]
        # Anchored at the taint point (the astype), naming the sink.
        assert "float32" in f.message
        assert "pgemm" in f.message

    def test_float64_preserving_helper_is_clean(self):
        src = GEMM_IMPORT + """
def prep(x):
    q = quantize_tensor(x)
    return q.astype(np.float64)


def run(x, w):
    a = prep(x)
    return pgemm(a, w)
"""
        assert run_deep_sources({"src/repro/demo/flow.py": src}) == []

    def test_no_exact_provenance_is_clean(self):
        # Plain float math into pgemm is the normal fp32/fp64 path; only
        # values minted exact then degraded are violations.
        src = GEMM_IMPORT + """
def run(x, w):
    a = x / 3.0
    return pgemm(a, w)
"""
        assert run_deep_sources({"src/repro/demo/flow.py": src}) == []

    def test_division_of_exact_value_fires(self):
        src = GEMM_IMPORT + """
def run(x, w):
    q = quantize_tensor(x)
    a = q / 3
    return pgemm(a, w)
"""
        findings = run_deep_sources({"src/repro/demo/flow.py": src})
        assert rules_of(findings) == ["DTY110"]
        assert "division" in findings[0].message

    def test_tainted_argument_into_gemm_calling_helper_fires(self):
        src = GEMM_IMPORT + """
def do_gemm(a, w):
    return pgemm(a, w)


def run(x, w):
    q = quantize_tensor(x)
    bad = q.astype(np.float32)
    return do_gemm(bad, w)
"""
        findings = run_deep_sources({"src/repro/demo/flow.py": src})
        assert rules_of(findings) == ["DTY110"]

    def test_exact_argument_into_gemm_calling_helper_is_clean(self):
        src = GEMM_IMPORT + """
def do_gemm(a, w):
    return pgemm(a, w)


def run(x, w):
    q = quantize_tensor(x)
    return do_gemm(q, w)
"""
        assert run_deep_sources({"src/repro/demo/flow.py": src}) == []

    def test_value_preserving_reshape_keeps_exactness(self):
        src = GEMM_IMPORT + """
def run(x, w):
    q = quantize_tensor(x)
    a = np.ascontiguousarray(q.reshape(4, -1))
    return pgemm(a, w)
"""
        assert run_deep_sources({"src/repro/demo/flow.py": src}) == []

    def test_cross_module_taint_flow(self):
        prep = """
import numpy as np


def prep(x):
    q = quantize_tensor(x)
    return q.astype(np.float32)
"""
        runner = """
from repro.core.gemm import pgemm
from repro.demo.prep import prep


def run(x, w):
    a = prep(x)
    return pgemm(a, w)
"""
        findings = run_deep_sources(
            {
                "src/repro/demo/prep.py": prep,
                "src/repro/demo/runner.py": runner,
            }
        )
        assert rules_of(findings) == ["DTY110"]
        # Anchored where exactness dies, in the helper module.
        assert findings[0].path == "src/repro/demo/prep.py"
