"""SARIF 2.1.0 emitter shape (the subset GitHub code scanning reads)."""

import json

from repro.checks.findings import Finding, Severity
from repro.checks.sarif import render_sarif


def sample_finding():
    return Finding(
        rule="THR210",
        severity=Severity.ERROR,
        path="src/repro/demo/state.py",
        line=14,
        col=4,
        message="shared mutable written without a common lock",
    )


class TestSarifShape:
    def test_top_level_envelope(self):
        doc = json.loads(render_sarif([sample_finding()], scanned=1))
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_driver_carries_full_rule_registry(self):
        doc = json.loads(render_sarif([], scanned=0))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = {r["id"] for r in rules}
        # Deep and shallow rules both present, with metadata.
        assert {"THR210", "THR211", "DTY110", "THR201", "DTY101"} <= ids
        by_id = {r["id"]: r for r in rules}
        assert by_id["THR210"]["properties"]["deep"] is True
        assert by_id["THR201"]["properties"]["deep"] is False
        assert by_id["THR210"]["defaultConfiguration"]["level"] == "error"
        assert by_id["THR210"]["fullDescription"]["text"]

    def test_result_location_and_level(self):
        doc = json.loads(render_sarif([sample_finding()], scanned=1))
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        r = results[0]
        assert r["ruleId"] == "THR210"
        assert r["level"] == "error"
        loc = r["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/demo/state.py"
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"]["startLine"] == 14
        assert loc["region"]["startColumn"] == 5  # 1-based in SARIF

    def test_rule_index_points_into_driver_rules(self):
        doc = json.loads(render_sarif([sample_finding()], scanned=1))
        run = doc["runs"][0]
        r = run["results"][0]
        assert run["tool"]["driver"]["rules"][r["ruleIndex"]]["id"] == "THR210"

    def test_unregistered_meta_rule_still_emits(self):
        f = Finding(
            rule="PARSE000", severity=Severity.ERROR,
            path="src/bad.py", line=1, col=0, message="could not parse",
        )
        doc = json.loads(render_sarif([f], scanned=1))
        r = doc["runs"][0]["results"][0]
        assert r["ruleId"] == "PARSE000"
        assert "ruleIndex" not in r

    def test_empty_findings_valid_run(self):
        doc = json.loads(render_sarif([], scanned=42))
        run = doc["runs"][0]
        assert run["results"] == []
        assert run["properties"]["scannedFiles"] == 42
