"""CLI behaviour for --deep, --format sarif, and the --changed fallback."""

import json

import pytest

from repro.checks.cli import main as check_main


RACY = """
import threading

_lock = threading.Lock()
_counter = 0


def locked_bump():
    global _counter
    with _lock:
        _counter += 1


def unlocked_bump():
    global _counter
    _counter += 1


def start():
    threading.Thread(target=locked_bump).start()
    threading.Thread(target=unlocked_bump).start()
"""

CLEAN = """
import threading

_lock = threading.Lock()
_counter = 0


def bump():
    global _counter
    with _lock:
        _counter += 1


def start():
    threading.Thread(target=bump).start()
    threading.Thread(target=bump).start()
"""


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro" / "demo"
    pkg.mkdir(parents=True)
    return pkg


class TestDeepFlag:
    def test_deep_finds_race_shallow_misses(self, tree, capsys):
        (tree / "state.py").write_text(RACY)
        assert check_main(["src", "--no-cache"]) == 0
        capsys.readouterr()
        assert check_main(["src", "--deep", "--no-cache"]) == 1
        assert "THR210" in capsys.readouterr().out

    def test_deep_clean_exits_zero(self, tree, capsys):
        (tree / "state.py").write_text(CLEAN)
        assert check_main(["src", "--deep", "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_deep_rule_selection(self, tree, capsys):
        (tree / "state.py").write_text(RACY)
        assert check_main(["src", "--deep", "--no-cache", "--rules", "THR211"]) == 0
        capsys.readouterr()
        assert check_main(["src", "--deep", "--no-cache", "--rules", "THR210"]) == 1

    def test_deep_writes_cache_dir(self, tree, tmp_path, capsys):
        (tree / "state.py").write_text(CLEAN)
        cache = tmp_path / "custom-cache"
        assert check_main(["src", "--deep", "--cache-dir", str(cache)]) == 0
        assert any(cache.iterdir())

    def test_dty103_superseded_under_deep(self, tree, capsys):
        # A name that only DTY103's heuristic would flag: under --deep
        # the provenance-based DTY110 takes over and stays quiet when
        # there is no actual exact source feeding the value.
        assert check_main(["src", "--deep", "--no-cache", "--rules", "DTY103"]) in (0, 1)


class TestSarifFormat:
    def test_sarif_output_parses(self, tree, capsys):
        (tree / "state.py").write_text(RACY)
        rc = check_main(["src", "--deep", "--no-cache", "--format", "sarif"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "THR210" for r in results)

    def test_sarif_clean_run(self, tree, capsys):
        (tree / "state.py").write_text(CLEAN)
        rc = check_main(["src", "--deep", "--no-cache", "--format", "sarif"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestChangedFallback:
    def test_changed_outside_git_falls_back_to_full_scan(self, tree, capsys):
        # tmp_path is not a git work-tree: --changed must warn and scan
        # everything rather than crash (regression for the RuntimeError).
        (tree / "state.py").write_text(RACY)
        rc = check_main(["src", "--changed"])
        captured = capsys.readouterr()
        assert rc == 0  # shallow rules see nothing wrong with RACY
        assert "falling back to a full scan" in captured.err
        assert "108" not in captured.out  # scanned the fixture tree, not src/

    def test_changed_deep_outside_git_still_runs_deep(self, tree, capsys):
        (tree / "state.py").write_text(RACY)
        rc = check_main(["src", "--changed", "--deep", "--no-cache"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "THR210" in captured.out
        assert "falling back" in captured.err
