"""Thread-root discovery pinned against the real repro tree.

This is the regression net for the call-graph's entry-point discovery:
if a refactor moves or renames a spawn site, or the resolver stops
seeing through ``self``-method / imported-function targets, this test
names exactly which second-program-counter entry disappeared.  New
legitimate spawn sites should be added to EXPECTED_ROOTS deliberately —
every entry here widens what THR210 must reason about.
"""

from pathlib import Path

import pytest

from repro.checks.analysis import CallGraph, Project

SRC = Path(__file__).resolve().parents[3] / "src"

#: (kind, fully-qualified target, resolved) for every spawn site in src/.
EXPECTED_ROOTS = {
    # Replica worker processes forked by the cluster supervisor.
    ("process", "repro.cluster.worker.replica_main", True),
    # GEMM worker-pool block kernels (row- and column-parallel paths).
    ("submit", "repro.core.gemm._mm_block", True),
    ("submit", "repro.core.gemm._mm_col_block", True),
    # Cluster I/O multiplexer and replica health monitor.
    ("thread", "repro.cluster.router.ClusterPool._io_loop", True),
    ("thread", "repro.cluster.supervisor.Supervisor._monitor_loop", True),
    # The HTTP accept loop: a stdlib method on an instance attribute —
    # kept as an unresolved pseudo-root so it stays visible here.
    ("thread", "repro.serve.server.self._httpd.serve_forever", False),
    # Serving worker threads.
    ("thread", "repro.serve.worker.WorkerPool._run", True),
}


@pytest.fixture(scope="module")
def graph():
    project = Project.load([str(SRC)], cache=None)
    assert not project.parse_failures
    return CallGraph.build(project)


class TestRealTreeRoots:
    def test_discovered_root_set_matches(self, graph):
        got = {(r.kind, r.target, r.resolved) for r in graph.roots}
        missing = EXPECTED_ROOTS - got
        extra = got - EXPECTED_ROOTS
        assert not missing, f"spawn sites no longer discovered: {sorted(missing)}"
        assert not extra, (
            f"new spawn sites {sorted(extra)} — if intentional, add them to "
            "EXPECTED_ROOTS (and make sure their shared state is locked)"
        )

    def test_spawners_are_recorded(self, graph):
        spawners = {r.target: r.spawner for r in graph.roots}
        assert (
            spawners["repro.cluster.worker.replica_main"]
            == "repro.cluster.supervisor.Supervisor._spawn"
        )
        assert (
            spawners["repro.serve.worker.WorkerPool._run"]
            == "repro.serve.worker.WorkerPool.__init__"
        )

    def test_worker_run_loop_reaches_the_batcher(self, graph):
        # The worker thread root must actually expand: _run drains the
        # batcher, so batcher internals are root-reachable.
        reached = [
            fq for fq, roots in graph.reachable_from.items()
            if "repro.serve.worker.WorkerPool._run" in roots
        ]
        assert len(reached) > 1, "root reachability did not expand past _run"

    def test_every_resolved_root_exists_in_the_project(self, graph):
        for r in graph.roots:
            if r.resolved:
                assert graph._ref_for(r.target) is not None, r.target
