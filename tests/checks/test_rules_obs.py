"""OBS3xx fixtures: positive, negative, and noqa-suppressed snippets."""

import textwrap

from repro.checks.engine import run_source


def scan(src, **kw):
    return run_source(textwrap.dedent(src), **kw)


def rules_of(findings):
    return [f.rule for f in findings]


class TestOBS301BarePrint:
    def test_print_flagged(self):
        findings = scan("print('hello')\n")
        assert rules_of(findings) == ["OBS301"]
        assert "console" in findings[0].message

    def test_stdout_write_flagged(self):
        src = """
        import sys
        sys.stdout.write("x")
        sys.stderr.write("y")
        """
        assert rules_of(scan(src)) == ["OBS301", "OBS301"]

    def test_console_and_logger_are_clean(self):
        src = """
        from repro.obs.log import console, get_logger
        console("user-facing table")
        get_logger("core.gemm").info("event", k=1)
        """
        assert scan(src) == []

    def test_log_module_is_exempt(self):
        assert scan("print('impl')\n", path="src/repro/obs/log.py") == []

    def test_noqa_suppresses(self):
        src = "print(banner)  # repro: noqa[OBS301] — pre-logging bootstrap error path\n"
        assert scan(src) == []


class TestOBS302SpanWithoutWith:
    def test_bare_span_call_flagged(self):
        src = """
        from repro.obs import trace

        def f():
            sp = trace.span("phase")
            sp.__enter__()
        """
        assert rules_of(scan(src)) == ["OBS302"]

    def test_with_span_is_clean(self):
        src = """
        from repro.obs import trace

        def f():
            with trace.span("phase") as sp:
                sp.add("items", 3)
        """
        assert scan(src) == []

    def test_trace_module_is_exempt(self):
        src = "def span_factory():\n    return span('x')\n"
        assert scan(src, path="src/repro/obs/trace.py") == []


class TestOBS303CounterOutsideSpan:
    def test_counter_after_with_flagged(self):
        src = """
        from repro.obs import trace

        def f():
            with trace.span("phase") as sp:
                work()
            sp.add("items", 3)
        """
        findings = scan(src)
        assert rules_of(findings) == ["OBS303"]
        assert "sp.add" in findings[0].message

    def test_counter_inside_with_is_clean(self):
        src = """
        from repro.obs import trace

        def f():
            with trace.span("phase") as sp:
                sp.set("mode", "dense")
                sp.add("items", 3)
        """
        assert scan(src) == []

    def test_unrelated_add_is_clean(self):
        src = """
        from repro.obs import trace

        def f(bag):
            with trace.span("phase") as sp:
                work()
            bag.add("not-a-span")
        """
        assert scan(src) == []


class TestOBS304SpanWithoutTraceContext:
    REQUEST_PATH = "src/repro/serve/worker.py"

    def test_request_path_span_without_context_flagged(self):
        src = """
        from repro.obs import trace

        def handle(batch):
            with trace.span("serve.batch", batch=len(batch)):
                infer(batch)
        """
        findings = scan(src, path=self.REQUEST_PATH)
        assert rules_of(findings) == ["OBS304"]
        assert "TraceContext" in findings[0].message

    def test_activate_establishes_context(self):
        src = """
        from repro.obs import trace

        def handle(batch, ctx):
            with trace.get_tracer().activate(ctx):
                with trace.span("serve.batch"):
                    infer(batch)
        """
        assert scan(src, path=self.REQUEST_PATH) == []

    def test_request_context_establishes_context(self):
        src = """
        from repro.obs import trace

        def handle(arr):
            with trace.request_context("serve.predict") as (sp, ctx):
                with trace.span("serve.validate"):
                    check(arr)
        """
        assert scan(src, path=self.REQUEST_PATH) == []

    def test_same_code_outside_request_paths_is_clean(self):
        src = """
        from repro.obs import trace

        def simulate(net):
            with trace.span("accel.simulate"):
                run(net)
        """
        assert scan(src, path="src/repro/accel/sim.py") == []

    def test_session_build_spans_exempt(self):
        src = """
        from repro.obs import trace

        def build(config):
            with trace.span("session.build"):
                construct(config)
        """
        assert scan(src, path="src/repro/serve/session.py") == []

    def test_module_level_span_not_flagged(self):
        # Only spans inside a function body are request handling.
        src = """
        from repro.obs import trace

        with trace.span("import.time"):
            warm()
        """
        assert scan(src, path=self.REQUEST_PATH) == []

    def test_noqa_suppresses(self):
        src = """
        from repro.obs import trace

        def background_flush():
            with trace.span("maintenance"):  # repro: noqa[OBS304] — maintenance loop, not a request
                flush()
        """
        assert scan(src, path=self.REQUEST_PATH) == []
