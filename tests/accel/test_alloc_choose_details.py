"""Worked numerical examples for the allocation model (paper Section 4.2)."""

import pytest

from repro.accel.alloc import PEAllocation, choose_allocation, idle_fractions


class TestPaperWorkedExample:
    """Section 4.3: 'Assuming that after the first 21 OFMs are computed in
    the predictor, an average of 15% of the high-precision output features
    are identified... we reconfigure the PE arrays so that the predictor
    uses 18 PE arrays and the executor uses the remaining nine.'"""

    def test_15_percent_gives_18_9(self):
        alloc = choose_allocation(0.15)
        assert (alloc.predictor_arrays, alloc.executor_arrays) == (18, 9)

    def test_at_18_9_with_15_percent_executor_slack(self):
        stats = idle_fractions(0.15, PEAllocation(18, 9))
        # 15% < 16% bubble-free bound: executor has slack, predictor full.
        assert stats.predictor_idle_fraction == 0.0
        assert 0.0 < stats.executor_idle_fraction < 0.15

    def test_50_percent_sensitive_needs_1_5x_executor(self):
        """Section 4.2: 'With 50% sensitive output features, the result
        generator has a 1.5x higher computational load than the
        sensitivity predictor.'  Load ratio = 3 cycles * 0.5 = 1.5."""
        from repro.config import EXECUTOR_MAC_CYCLES, PREDICTOR_MAC_CYCLES

        load_ratio = EXECUTOR_MAC_CYCLES * 0.5 / PREDICTOR_MAC_CYCLES
        assert load_ratio == pytest.approx(1.5)


class TestBoundaries:
    def test_exact_table1_boundary_feasible(self):
        # s exactly at a config's bound keeps that config selectable.
        alloc = choose_allocation(9 / 54)  # 16.67% = P18/E9's exact bound
        assert alloc.predictor_arrays == 18

    def test_just_above_boundary_steps_down(self):
        alloc = choose_allocation(9 / 54 + 1e-9)
        assert alloc.predictor_arrays == 15
