"""Executor workload scheduling (Figs 14-16)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.schedule import (
    candidate_sets,
    ideal_dynamic_schedule,
    odq_dynamic_schedule,
    static_schedule,
)


class TestPaperExample:
    """The worked example of Figures 14-15: six arrays, loads 7/4/4/7/4/4."""

    def test_static_takes_21_cycles(self):
        res = static_schedule([7, 4, 4, 7, 4, 4], 6)
        assert res.makespan_cycles == 21
        assert res.idle_cycles == 4 * 9  # four light arrays wait 9 cycles

    def test_ideal_dynamic_takes_15_cycles(self):
        res = ideal_dynamic_schedule([7, 4, 4, 7, 4, 4], 6)
        assert res.makespan_cycles == 15
        assert res.idle_fraction == 0.0

    def test_odq_dynamic_reaches_ideal_on_example(self):
        # Per-channel loads summing to 30 over 6 arrays -> 5 rounds = 15 cycles.
        res = odq_dynamic_schedule([11, 7, 6, 6], 6, granularity=1)
        assert res.makespan_cycles == 15


class TestStaticSchedule:
    def test_round_robin_assignment(self):
        res = static_schedule([3, 1], 2)
        np.testing.assert_array_equal(res.busy_cycles, [9, 3])
        assert res.makespan_cycles == 9

    def test_empty_workloads(self):
        res = static_schedule([], 4)
        assert res.makespan_cycles == 0
        assert res.idle_fraction == 0.0

    def test_invalid_arrays(self):
        with pytest.raises(ValueError):
            static_schedule([1], 0)

    def test_negative_workloads_rejected(self):
        with pytest.raises(ValueError):
            static_schedule([-1], 2)


class TestIdealDynamic:
    def test_perfect_balance(self):
        res = ideal_dynamic_schedule([10, 10], 4)
        np.testing.assert_array_equal(res.busy_cycles, [15, 15, 15, 15])

    def test_remainder_spread(self):
        res = ideal_dynamic_schedule([7], 3)
        assert sorted(res.busy_cycles.tolist()) == [6, 6, 9]

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=12),
    )
    def test_never_worse_than_static(self, loads, n):
        """Property: ideal dynamic makespan <= static makespan."""
        assert (
            ideal_dynamic_schedule(loads, n).makespan_cycles
            <= static_schedule(loads, n).makespan_cycles
        )


class TestCandidateSets:
    def test_each_cluster_covers_all_channels(self):
        sets = candidate_sets(n_channels=4, n_arrays=6, clusters=3, channels_per_array=2)
        per_cluster = 2
        for c in range(3):
            covered = set()
            for a in range(c * per_cluster, (c + 1) * per_cluster):
                covered.update(sets[a])
            assert covered == {0, 1, 2, 3}

    def test_widens_sets_when_channels_exceed_capacity(self):
        sets = candidate_sets(n_channels=16, n_arrays=6, clusters=3, channels_per_array=2)
        union = set()
        for s in sets:
            union.update(s)
        assert union == set(range(16))

    def test_pairings_differ_across_clusters(self):
        sets = candidate_sets(n_channels=4, n_arrays=6, clusters=3, channels_per_array=2)
        cluster_pairs = [frozenset(map(tuple, sets[c * 2 : (c + 1) * 2])) for c in range(3)]
        assert len(set(cluster_pairs)) > 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            candidate_sets(0, 6)


class TestODQDynamic:
    def test_zero_work(self):
        res = odq_dynamic_schedule([0, 0, 0], 6)
        assert res.makespan_cycles == 0

    def test_all_work_completed(self):
        loads = [13, 2, 40, 7]
        res = odq_dynamic_schedule(loads, 6, granularity=1)
        assert res.busy_cycles.sum() == sum(loads) * 3

    @settings(deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=12),
        st.integers(min_value=2, max_value=9),
    )
    def test_bounded_by_static_and_ideal(self, loads, n):
        """Property: ideal <= odq-dynamic; odq-dynamic work conserved."""
        ideal = ideal_dynamic_schedule(loads, n).makespan_cycles
        odq = odq_dynamic_schedule(loads, n, granularity=1)
        assert odq.makespan_cycles >= ideal
        assert odq.busy_cycles.sum() == sum(loads) * 3

    def test_granularity_speeds_simulation_with_bounded_error(self):
        rng = np.random.default_rng(0)
        loads = rng.integers(0, 500, 32).tolist()
        fine = odq_dynamic_schedule(loads, 9, granularity=1).makespan_cycles
        coarse = odq_dynamic_schedule(loads, 9, granularity=16).makespan_cycles
        assert abs(coarse - fine) / max(fine, 1) < 0.25

    def test_skewed_loads_better_than_static(self):
        loads = [100, 1, 1, 1, 1, 1]
        st_res = static_schedule(loads, 6)
        dy_res = odq_dynamic_schedule(loads, 6, granularity=1)
        assert dy_res.makespan_cycles < st_res.makespan_cycles
