"""Table-2 config registry and scheme-to-accelerator mapping."""

import pytest

from repro.accel.configs import TABLE2, accelerator_for_scheme
from repro.config import ACCEL_DRQ, ACCEL_INT8, ACCEL_INT16, ACCEL_ODQ, PES_PER_ARRAY


class TestTable2Registry:
    def test_specs(self):
        assert TABLE2["INT16"] is ACCEL_INT16
        assert TABLE2["ODQ"].num_pes == 4860

    def test_pes_per_array_divides_evenly(self):
        assert PES_PER_ARRAY * 27 == ACCEL_ODQ.num_pes


class TestSchemeMapping:
    @pytest.mark.parametrize(
        "scheme,spec",
        [
            ("int16", ACCEL_INT16),
            ("INT16", ACCEL_INT16),
            ("int8", ACCEL_INT8),
            ("drq84", ACCEL_DRQ),
            ("drq42", ACCEL_DRQ),
            ("odq", ACCEL_ODQ),
        ],
    )
    def test_mapping(self, scheme, spec):
        assert accelerator_for_scheme(scheme) is spec

    def test_unknown(self):
        with pytest.raises(KeyError):
            accelerator_for_scheme("fp32")
