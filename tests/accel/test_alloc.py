"""PE-array allocation: Table 1 exactness, dynamic choice, idle model."""

import pytest
from hypothesis import given, strategies as st

from repro.accel.alloc import (
    PEAllocation,
    choose_allocation,
    idle_fractions,
    max_sensitive_fraction,
    table1_configurations,
)


class TestTable1:
    def test_exact_paper_values(self):
        """Table 1 of the paper, floored percentages."""
        expected = {(9, 18): 66, (12, 15): 41, (15, 12): 26, (18, 9): 16, (21, 6): 9}
        for cfg in table1_configurations():
            key = (cfg.predictor_arrays, cfg.executor_arrays)
            assert int(100 * cfg.max_sensitive_fraction) == expected[key]

    def test_five_configurations(self):
        configs = table1_configurations()
        assert len(configs) == 5
        assert all(c.predictor_arrays + c.executor_arrays == 27 for c in configs)

    def test_balance_formula(self):
        assert max_sensitive_fraction(9, 18) == pytest.approx(18 / 27)
        assert max_sensitive_fraction(18, 9) == pytest.approx(9 / 54)


class TestPEAllocation:
    def test_fixed_array_minimums_enforced(self):
        with pytest.raises(ValueError):
            PEAllocation(8, 19)  # below 9 fixed predictor arrays
        with pytest.raises(ValueError):
            PEAllocation(22, 5)  # below 6 fixed executor arrays

    def test_must_use_all_arrays(self):
        with pytest.raises(ValueError):
            PEAllocation(9, 9)

    def test_str(self):
        assert str(PEAllocation(18, 9)) == "P18/E9"


class TestChooseAllocation:
    def test_paper_example_15_percent(self):
        """Section 4.3's worked example: 15% sensitive -> 18/9 split."""
        alloc = choose_allocation(0.15)
        assert (alloc.predictor_arrays, alloc.executor_arrays) == (18, 9)

    def test_extremes(self):
        assert choose_allocation(0.05).predictor_arrays == 21
        assert choose_allocation(0.60).predictor_arrays == 9

    def test_above_max_falls_back_to_most_executor_heavy(self):
        alloc = choose_allocation(0.9)
        assert alloc.predictor_arrays == 9

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            choose_allocation(1.5)

    @given(st.floats(min_value=0.0, max_value=0.66))
    def test_chosen_config_is_bubble_free(self, s):
        """Property: within the feasible range the chosen config covers s."""
        alloc = choose_allocation(s)
        assert alloc.max_sensitive_fraction >= s

    @given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    def test_more_sensitivity_never_more_predictor_arrays(self, a, b):
        lo, hi = sorted((a, b))
        assert (
            choose_allocation(hi).predictor_arrays
            <= choose_allocation(lo).predictor_arrays
        )


class TestIdleFractions:
    def test_balanced_point_no_idle(self):
        alloc = PEAllocation(9, 18)
        stats = idle_fractions(18 / 27, alloc)
        assert stats.predictor_idle_fraction == pytest.approx(0.0)
        assert stats.executor_idle_fraction == pytest.approx(0.0, abs=1e-12)
        assert stats.overall_idle_fraction == pytest.approx(0.0, abs=1e-12)

    def test_low_sensitivity_idles_executor(self):
        alloc = PEAllocation(12, 15)  # bubble-free up to 41%
        stats = idle_fractions(0.1, alloc)
        assert stats.executor_idle_fraction > 0.5
        assert stats.predictor_idle_fraction == 0.0

    def test_high_sensitivity_idles_predictor(self):
        alloc = PEAllocation(18, 9)  # bubble-free up to 16%
        stats = idle_fractions(0.5, alloc)
        assert stats.predictor_idle_fraction > 0.5
        assert stats.executor_idle_fraction == pytest.approx(0.0, abs=1e-12)

    def test_static_allocation_idles_like_fig11(self):
        """Fig. 11's observation: fixed splits leave 14-50% of PEs idle
        across realistic per-layer sensitivities."""
        alloc = PEAllocation(12, 15)
        sensitivities = [0.10, 0.20, 0.30, 0.50]
        overall = [idle_fractions(s, alloc).overall_idle_fraction for s in sensitivities]
        assert max(overall) > 0.3
        assert all(o >= 0.0 for o in overall)

    def test_dynamic_beats_static_on_average(self):
        sensitivities = [0.08, 0.15, 0.25, 0.40, 0.55]
        static = PEAllocation(12, 15)
        static_idle = sum(
            idle_fractions(s, static).overall_idle_fraction for s in sensitivities
        )
        dynamic_idle = sum(
            idle_fractions(s, choose_allocation(s)).overall_idle_fraction
            for s in sensitivities
        )
        assert dynamic_idle < static_idle

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_idle_fractions_bounded(self, s):
        for alloc in table1_configurations():
            stats = idle_fractions(s, alloc)
            assert 0.0 <= stats.predictor_idle_fraction <= 1.0
            assert 0.0 <= stats.executor_idle_fraction <= 1.0
            assert 0.0 <= stats.overall_idle_fraction <= 1.0
