"""Mask-dump serialization roundtrip and the CLI simulate path."""

import numpy as np
import pytest

from repro.accel.dump import load_workloads, save_workloads
from repro.accel.simulator import LayerWorkload, build_accelerator


def make_workloads(n=3):
    rng = np.random.default_rng(0)
    out = []
    for i in range(n):
        total = 8 * 8 * 8 * 16 * 9
        out.append(
            LayerWorkload(
                name=f"C{i + 1}", in_channels=16, out_channels=8, kernel=3,
                out_h=8, out_w=8, images=2,
                macs={"pred_int2": total, "exec_int4": total // 4},
                sensitive_fraction=0.25,
                per_channel_sensitive=rng.integers(0, 100, 8) if i != 1 else None,
                input_sensitive_fraction=0.4,
            )
        )
    return out


class TestRoundtrip:
    def test_all_fields_preserved(self, tmp_path):
        wls = make_workloads()
        path = save_workloads(tmp_path / "masks.npz", wls)
        loaded = load_workloads(path)
        assert len(loaded) == len(wls)
        for a, b in zip(wls, loaded):
            assert a.name == b.name
            assert a.macs == b.macs
            assert a.sensitive_fraction == b.sensitive_fraction
            assert a.input_sensitive_fraction == b.input_sensitive_fraction
            if a.per_channel_sensitive is None:
                assert b.per_channel_sensitive is None
            else:
                np.testing.assert_array_equal(
                    a.per_channel_sensitive, b.per_channel_sensitive
                )

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        wls = make_workloads()
        loaded = load_workloads(save_workloads(tmp_path / "m.npz", wls))
        a = build_accelerator("ODQ").simulate(wls).total_cycles
        b = build_accelerator("ODQ").simulate(loaded).total_cycles
        assert a == b

    def test_version_check(self, tmp_path):
        import json

        bad = {"meta": np.frombuffer(
            json.dumps({"version": 99, "layers": []}).encode(), dtype=np.uint8
        )}
        np.savez(tmp_path / "bad.npz", **bad)
        with pytest.raises(ValueError):
            load_workloads(tmp_path / "bad.npz")


class TestCLI:
    def test_info_and_tables(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        assert main(["table1"]) == 0
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "4860" in out

    def test_simulate_dump(self, tmp_path, capsys):
        from repro.__main__ import main

        path = save_workloads(tmp_path / "m.npz", make_workloads())
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ODQ" in out and "norm. time" in out

    def test_requires_command(self, capsys):
        from repro.__main__ import main

        # No command: usage on stderr and return status 2 (no traceback,
        # no SystemExit) — `python -m repro` turns this into exit code 2.
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err
