"""Simulator internals: operand widths, reuse, MAC-class filtering."""

import numpy as np
import pytest

from repro.accel.memory import MemoryConfig
from repro.accel.simulator import (
    DRQAccelerator,
    Int8Accelerator,
    Int16Accelerator,
    LayerWorkload,
    ODQAccelerator,
)


def wl(sensitive=0.25, input_sensitive=0.5, macs=None):
    total_out = 8 * 8 * 8
    total = total_out * 16 * 9
    return LayerWorkload(
        name="C", in_channels=16, out_channels=8, kernel=3,
        out_h=8, out_w=8, images=1,
        macs=macs or {
            "int16": total, "int8": total,
            "drq_hi": total // 2, "drq_lo": total - total // 2,
            "pred_int2": total, "exec_int4": int(total * sensitive),
        },
        sensitive_fraction=sensitive,
        input_sensitive_fraction=input_sensitive,
    )


class TestOperandBits:
    def test_static_designs(self):
        assert Int16Accelerator().operand_bits(wl()) == (16.0, 16.0)
        assert Int8Accelerator().operand_bits(wl()) == (8.0, 8.0)

    def test_drq_bits_track_input_sensitivity(self):
        accel = DRQAccelerator(hi_bits=8, lo_bits=4)
        all_lo = accel.operand_bits(wl(input_sensitive=0.0))
        all_hi = accel.operand_bits(wl(input_sensitive=1.0))
        mid = accel.operand_bits(wl(input_sensitive=0.5))
        assert all_lo == (4.0, 4.0)
        assert all_hi == (8.0, 8.0)
        assert mid == (6.0, 6.0)

    def test_odq_bits_track_output_sensitivity(self):
        accel = ODQAccelerator()
        assert accel.operand_bits(wl(sensitive=0.0)) == (2.0, 2.0)
        assert accel.operand_bits(wl(sensitive=1.0)) == (6.0, 6.0)


class TestMacClassFiltering:
    def test_shared_workload_not_double_counted(self):
        """A workload carrying every scheme's MAC counts must charge each
        accelerator only for its own classes."""
        w = wl()
        e16 = Int16Accelerator().simulate_layer(w).energy.cores_pj
        e8 = Int8Accelerator().simulate_layer(w).energy.cores_pj
        eodq = ODQAccelerator().simulate_layer(w).energy.cores_pj
        assert e16 > e8 > eodq

    def test_unfiltered_base_class_uses_all(self):
        from repro.accel.simulator import AcceleratorModel

        class Dummy(AcceleratorModel):
            spec = Int16Accelerator.spec

            def compute_cycles(self, wl):
                return 1.0

            def operand_bits(self, wl):
                return 8.0, 8.0

        w = wl(macs={"int16": 10, "int8": 10})
        assert Dummy()._own_macs(w) == {"int16": 10, "int8": 10}


class TestReuse:
    def test_odq_reuse_between_dense_and_sparse(self):
        mem = MemoryConfig()
        accel = ODQAccelerator(mem=mem)
        r_none = accel.reuse(wl(sensitive=0.0))
        r_half = accel.reuse(wl(sensitive=0.5))
        assert r_half < r_none <= mem.dense_reuse
        assert r_half >= mem.executor_reuse() * 0.3

    def test_drq_reuse_between_dense_and_clustered(self):
        mem = MemoryConfig()
        r = DRQAccelerator(mem=mem).reuse(wl())
        assert mem.executor_reuse() < r < mem.dense_reuse


class TestRoofline:
    def test_memory_bound_layer_uses_memory_cycles(self):
        # Starved bandwidth makes everything memory bound.
        slow = MemoryConfig(dram_bandwidth_bytes_per_cycle=1e-3)
        res = Int16Accelerator(mem=slow).simulate_layer(wl())
        assert res.cycles == res.memory_cycles > res.compute_cycles

    def test_compute_bound_layer_uses_compute_cycles(self):
        fast = MemoryConfig(dram_bandwidth_bytes_per_cycle=1e9)
        res = Int16Accelerator(mem=fast).simulate_layer(wl())
        assert res.cycles == res.compute_cycles


class TestODQSchedulerModes:
    def test_unknown_scheduler_rejected(self):
        w = wl()
        w.per_channel_sensitive = np.array([10, 10, 10, 10, 10, 10, 10, 10])
        with pytest.raises(ValueError):
            ODQAccelerator(scheduler="magic").compute_cycles(w)

    def test_static_scheduler_never_faster_than_dynamic(self):
        rng = np.random.default_rng(0)
        w = wl(sensitive=0.4)
        w.per_channel_sensitive = rng.geometric(0.01, size=8)
        dyn = ODQAccelerator(scheduler="dynamic").compute_cycles(w)
        sta = ODQAccelerator(scheduler="static").compute_cycles(w)
        assert dyn <= sta + 1e-9
