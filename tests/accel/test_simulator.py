"""Network simulation on the Table-2 accelerators."""

import numpy as np
import pytest

from repro.accel.alloc import PEAllocation
from repro.accel.simulator import (
    DRQAccelerator,
    Int8Accelerator,
    Int16Accelerator,
    LayerWorkload,
    ODQAccelerator,
    build_accelerator,
    workloads_from_records,
)
from repro.config import PES_PER_ARRAY


def make_workload(sensitive=0.25, images=2, out_c=8, hw=8, in_c=16, k=3, macs=None):
    total_outputs = images * out_c * hw * hw
    mpo = k * k * in_c
    wl = LayerWorkload(
        name="C1",
        in_channels=in_c,
        out_channels=out_c,
        kernel=k,
        out_h=hw,
        out_w=hw,
        images=images,
        macs=macs or {},
        sensitive_fraction=sensitive,
    )
    if not wl.macs:
        total = wl.total_macs
        wl.macs = {
            "int16": total,
            "int8": total,
            "drq_hi": total // 2,
            "drq_lo": total - total // 2,
            "pred_int2": total,
            "exec_int4": int(total * sensitive),
        }
    counts = np.random.default_rng(0).multinomial(
        int(total_outputs * sensitive), np.ones(out_c) / out_c
    )
    wl.per_channel_sensitive = counts
    wl.input_sensitive_fraction = 0.5
    return wl


class TestWorkload:
    def test_totals(self):
        wl = make_workload()
        assert wl.macs_per_output == 144
        assert wl.total_outputs == 2 * 8 * 8 * 8
        assert wl.total_macs == wl.total_outputs * 144


class TestFactory:
    def test_builds_all_table2(self):
        for name, cls in [("INT16", Int16Accelerator), ("INT8", Int8Accelerator),
                          ("DRQ", DRQAccelerator), ("ODQ", ODQAccelerator)]:
            assert isinstance(build_accelerator(name), cls)

    def test_unknown(self):
        with pytest.raises(KeyError):
            build_accelerator("TPU")


class TestComputeModels:
    def test_int16_throughput(self):
        wl = make_workload()
        accel = Int16Accelerator()
        assert accel.compute_cycles(wl) == pytest.approx(wl.total_macs / 120)

    def test_int8_is_4_cycles_per_mac(self):
        wl = make_workload()
        accel = Int8Accelerator()
        assert accel.compute_cycles(wl) == pytest.approx(wl.total_macs * 4 / 1692)

    def test_drq_between_int4_and_int8(self):
        wl = make_workload()
        drq = DRQAccelerator().compute_cycles(wl)
        all_hi = wl.total_macs * 4 / 1692
        all_lo = wl.total_macs * 1 / 1692
        assert all_lo < drq < all_hi

    def test_odq_pipeline_balance(self):
        """At low sensitivity the predictor dominates; compute time matches
        the predictor-side analytic value under the chosen allocation."""
        wl = make_workload(sensitive=0.10)
        accel = ODQAccelerator(scheduler="static")
        cycles = accel.compute_cycles(wl)
        # choose_allocation(0.10) -> P18/E9.
        pred = wl.total_macs / (18 * PES_PER_ARRAY)
        assert cycles >= pred * 0.99

    def test_odq_static_allocation_override(self):
        wl = make_workload(sensitive=0.5)
        dyn = ODQAccelerator().compute_cycles(wl)
        bad_static = ODQAccelerator(allocation=PEAllocation(21, 6)).compute_cycles(wl)
        assert bad_static > dyn

    def test_odq_zero_sensitivity_pure_predictor(self):
        wl = make_workload(sensitive=0.0)
        wl.macs["exec_int4"] = 0
        wl.per_channel_sensitive = np.zeros(8, dtype=np.int64)
        accel = ODQAccelerator()
        c = accel.compute_cycles(wl)
        assert c == pytest.approx(wl.total_macs / (21 * PES_PER_ARRAY))


class TestOrderings:
    """The paper's headline orderings must hold for any plausible layer."""

    @pytest.mark.parametrize("sensitive", [0.1, 0.25, 0.5])
    def test_cycles_ordering(self, sensitive):
        wl = make_workload(sensitive=sensitive)
        t16 = Int16Accelerator().simulate([wl]).total_cycles
        t8 = Int8Accelerator().simulate([wl]).total_cycles
        tdrq = DRQAccelerator().simulate([wl]).total_cycles
        todq = ODQAccelerator().simulate([wl]).total_cycles
        assert todq < tdrq < t8 < t16

    @pytest.mark.parametrize("sensitive", [0.1, 0.25, 0.5])
    def test_energy_ordering(self, sensitive):
        wl = make_workload(sensitive=sensitive)
        e16 = Int16Accelerator().simulate([wl]).total_energy.total_pj
        e8 = Int8Accelerator().simulate([wl]).total_energy.total_pj
        edrq = DRQAccelerator().simulate([wl]).total_energy.total_pj
        eodq = ODQAccelerator().simulate([wl]).total_energy.total_pj
        assert eodq < edrq < e8 < e16

    def test_more_sensitivity_more_odq_time(self):
        lo = ODQAccelerator().simulate([make_workload(sensitive=0.1)]).total_cycles
        hi = ODQAccelerator().simulate([make_workload(sensitive=0.6)]).total_cycles
        assert hi > lo


class TestSimResult:
    def test_layer_results_populated(self):
        wl = make_workload()
        sim = ODQAccelerator().simulate([wl, wl])
        assert len(sim.layers) == 2
        layer = sim.layers[0]
        assert layer.allocation is not None
        assert layer.idle is not None
        assert layer.cycles == max(layer.compute_cycles, layer.memory_cycles)

    def test_normalization(self):
        wl = make_workload()
        ref = Int16Accelerator().simulate([wl])
        odq = ODQAccelerator().simulate([wl])
        assert odq.normalized_time(ref) < 1.0
        assert odq.normalized_energy(ref) < 1.0

    def test_energy_breakdown_components_positive(self):
        sim = ODQAccelerator().simulate([make_workload()])
        e = sim.total_energy
        assert e.cores_pj > 0 and e.buffer_pj > 0 and e.dram_pj > 0 and e.static_pj > 0


class TestFromRecords:
    def test_roundtrip_from_engine_records(self, trained_resnet, tiny_dataset):
        from repro.core.pipeline import run_scheme
        from repro.core.schemes import odq_scheme

        model, _ = trained_resnet
        _, records = run_scheme(
            model, odq_scheme(0.3),
            tiny_dataset.x_train[:16], tiny_dataset.x_test[:16], tiny_dataset.y_test[:16],
        )
        wls = workloads_from_records(records)
        assert len(wls) == 19
        sim = ODQAccelerator().simulate(wls)
        assert sim.total_cycles > 0
