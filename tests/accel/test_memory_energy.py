"""Memory traffic and energy models."""

import pytest

from repro.accel.energy import DEFAULT_ENERGY, EnergyBreakdown, mac_energy_pj
from repro.accel.memory import (
    DEFAULT_MEMORY,
    MemoryConfig,
    conv_layer_traffic,
    memory_cycles,
)


class TestMemory:
    def _traffic(self, **over):
        kwargs = dict(
            in_channels=16, out_channels=32, kernel=3, out_h=16, out_w=16,
            images=2, weight_bits=8, act_bits=8, reuse=DEFAULT_MEMORY.dense_reuse,
            mem=DEFAULT_MEMORY,
        )
        kwargs.update(over)
        return conv_layer_traffic(**kwargs)

    def test_traffic_positive_components(self):
        t = self._traffic()
        assert t.weight_bytes > 0 and t.input_bytes > 0 and t.output_bytes > 0
        assert t.total_bytes == t.weight_bytes + t.input_bytes + t.output_bytes

    def test_traffic_scales_with_bits(self):
        assert self._traffic(act_bits=16).input_bytes == 2 * self._traffic(act_bits=8).input_bytes

    def test_resident_maps_cost_only_trickle(self):
        """CIFAR-scale feature maps stay on-chip; DRAM sees 10% turnover."""
        t = self._traffic()
        raw_in = 2 * 16 * 16 * 16 * 8 / 8  # images*C*(H)*(W)*bits/8
        assert t.input_bytes == pytest.approx(0.1 * raw_in)

    def test_reuse_divides_input_traffic_when_spilled(self):
        # Large maps overflow on-chip SRAM and pay im2col/reuse traffic.
        big = dict(out_h=128, out_w=128, in_channels=64, out_channels=64)
        assert self._traffic(reuse=32, **big).input_bytes == pytest.approx(
            2 * self._traffic(reuse=64, **big).input_bytes
        )

    def test_oversized_weights_refetched(self):
        small = MemoryConfig(onchip_bytes=1024)
        t = conv_layer_traffic(64, 64, 3, 8, 8, 1, 8, 8, 64.0, small)
        plain_bytes = 64 * 64 * 9  # one byte per weight
        assert t.weight_bytes > plain_bytes

    def test_memory_cycles(self):
        t = self._traffic()
        cycles = memory_cycles(t, DEFAULT_MEMORY)
        assert cycles == pytest.approx(t.total_bytes / DEFAULT_MEMORY.dram_bandwidth_bytes_per_cycle)

    def test_executor_reuse_scales_with_clusters(self):
        mem = DEFAULT_MEMORY
        assert mem.executor_reuse(3) == 3 * mem.sparse_reuse
        assert mem.executor_reuse(1) == mem.sparse_reuse


class TestEnergyModel:
    def test_mac_energy_quadratic_trend(self):
        m = DEFAULT_ENERGY
        assert m.mac_pj(2) < m.mac_pj(4) < m.mac_pj(8) < m.mac_pj(16)
        # Roughly quadratic: doubling width ~4x multiplier energy.
        assert m.mac_pj(16) / m.mac_pj(8) > 3.0

    def test_anchor_point(self):
        assert DEFAULT_ENERGY.mac_pj(8) == pytest.approx(0.23)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            DEFAULT_ENERGY.mac_pj(0)

    def test_dram_much_costlier_than_sram(self):
        assert DEFAULT_ENERGY.dram_pj_per_byte() > 50 * DEFAULT_ENERGY.sram_pj_per_byte()


class TestMacEnergy:
    def test_known_classes(self):
        e = mac_energy_pj({"int8": 1000})
        assert e == pytest.approx(1000 * DEFAULT_ENERGY.mac_pj(8))

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            mac_energy_pj({"int3": 10})

    def test_exec_class_costs_three_quarters_int4(self):
        full = mac_energy_pj({"int4": 100})
        execu = mac_energy_pj({"exec_int4": 100})
        assert execu == pytest.approx(0.75 * full)

    def test_odq_mac_mix_cheaper_than_static_int4(self):
        """Predictor-everywhere + executor-on-25% must undercut full INT4."""
        n = 10_000
        odq = mac_energy_pj({"pred_int2": n, "exec_int4": n // 4})
        static4 = mac_energy_pj({"int4": n})
        assert odq < static4

    def test_class_bits_override(self):
        base = mac_energy_pj({"drq_hi": 100})
        low = mac_energy_pj({"drq_hi": 100}, class_bits={"drq_hi": 4})
        assert low < base


class TestEnergyBreakdown:
    def test_addition(self):
        a = EnergyBreakdown(1, 2, 3, 4)
        b = EnergyBreakdown(10, 20, 30, 40)
        total = a + b
        assert total.total_pj == 110

    def test_normalization(self):
        e = EnergyBreakdown(cores_pj=50, buffer_pj=25, dram_pj=25, static_pj=0)
        shares = e.normalized_to(200.0)
        assert shares["total"] == pytest.approx(0.5)
        assert shares["cores"] == pytest.approx(0.25)

    def test_bad_reference(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().normalized_to(0.0)
