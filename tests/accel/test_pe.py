"""PE timing/area models."""

import pytest

from repro.accel.pe import (
    AREA_BUDGET_MM2,
    DEFAULT_TIMING,
    PETiming,
    bitfusion_mac_cycles,
    pe_area_mm2,
    pes_in_budget,
)


class TestBitfusionCycles:
    def test_native_width_one_cycle(self):
        assert bitfusion_mac_cycles(2, 2) == 1
        assert bitfusion_mac_cycles(4, 4) == 1

    def test_narrower_op_still_one_cycle(self):
        assert bitfusion_mac_cycles(2, 4) == 1

    def test_quadratic_decomposition(self):
        assert bitfusion_mac_cycles(4, 2) == 4   # the paper's full INT4 MAC
        assert bitfusion_mac_cycles(8, 4) == 4   # DRQ's INT8 on INT4 fabric
        assert bitfusion_mac_cycles(8, 2) == 16
        assert bitfusion_mac_cycles(16, 4) == 16

    def test_non_multiple_rounds_up(self):
        assert bitfusion_mac_cycles(6, 4) == 4  # ceil(6/4)=2 -> 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            bitfusion_mac_cycles(0, 4)


class TestPETiming:
    def test_default_consistent_with_eq3(self):
        t = DEFAULT_TIMING
        assert t.predictor_mac + t.executor_mac == t.full_int4_mac
        assert t.predictor_mac == 1 and t.executor_mac == 3

    def test_inconsistent_rejected(self):
        with pytest.raises(ValueError):
            PETiming(predictor_mac=2, executor_mac=3, full_int4_mac=4)


class TestArea:
    def test_monotone_in_bits(self):
        assert pe_area_mm2(2) < pe_area_mm2(4) < pe_area_mm2(8) < pe_area_mm2(16)

    def test_int16_budget_matches_table2(self):
        assert pes_in_budget(16) == 120

    def test_narrow_pe_counts_order_of_table2(self):
        """INT4/INT2 PE counts land in the same regime as Table 2
        (1692 and 4860; an analytic area model can't be exact)."""
        n4 = pes_in_budget(4)
        n2 = pes_in_budget(2)
        assert 1100 < n4 < 2500
        assert 3500 < n2 < 6500
        assert n2 > n4 > 120

    def test_budget_scales_linearly(self):
        assert pes_in_budget(16, 2 * AREA_BUDGET_MM2) == 240
