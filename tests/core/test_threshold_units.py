"""Threshold-machinery unit tests that need no trained model."""

import numpy as np
import pytest

from repro.core.threshold import ThresholdSearchResult, ThresholdSweepPoint


class TestSearchResult:
    def test_accuracy_drop(self):
        r = ThresholdSearchResult(
            threshold=0.5, accuracy=0.8, baseline_accuracy=0.9, trace=[(0.5, 0.8)]
        )
        assert r.accuracy_drop == pytest.approx(0.1)
        assert r.converged

    def test_trace_defaults_empty(self):
        r = ThresholdSearchResult(0.1, 0.5, 0.6)
        assert r.trace == []


class TestSweepPoint:
    def test_fields(self):
        p = ThresholdSweepPoint(0.3, 0.85, 0.6, 0.4)
        assert p.insensitive_fraction + p.sensitive_fraction == pytest.approx(1.0)


class TestScaledThresholdExecutor:
    """threshold_mode='scaled' mechanics on a single layer."""

    def _executor(self, rng, mode, threshold):
        from repro.core.odq import ODQConvExecutor
        from repro.nn import Conv2d

        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        ex = ODQConvExecutor(conv, "C", threshold=threshold, threshold_mode=mode)
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        ex.calibrate(x)
        ex.freeze()
        return ex, x

    def test_scaled_uses_calibrated_std(self, rng):
        ex, x = self._executor(rng, "scaled", threshold=0.5)
        assert ex.output_std is not None and ex.output_std > 0
        assert ex.effective_threshold == pytest.approx(0.5 * ex.output_std)

    def test_absolute_ignores_std(self, rng):
        ex, _ = self._executor(rng, "absolute", threshold=0.5)
        assert ex.effective_threshold == 0.5
        assert ex.output_std is None

    def test_unknown_mode_rejected(self, rng):
        from repro.core.odq import ODQConvExecutor
        from repro.nn import Conv2d

        with pytest.raises(ValueError):
            ODQConvExecutor(Conv2d(2, 2, 3, rng=rng), "C", threshold=0.1,
                            threshold_mode="relative")

    def test_scaled_and_absolute_agree_when_std_is_one(self, rng):
        """With unit output std the two modes produce identical masks."""
        ex_s, x = self._executor(rng, "scaled", threshold=0.3)
        ex_s.output_std = 1.0
        from repro.core.odq import ODQConvExecutor
        from repro.nn import Conv2d

        ex_a = ODQConvExecutor(ex_s.conv, "C", threshold=0.3, threshold_mode="absolute")
        ex_a.calibrate(x)
        ex_a.freeze()
        np.testing.assert_array_equal(
            ex_s.sensitivity_mask(x).mask, ex_a.sensitivity_mask(x).mask
        )
