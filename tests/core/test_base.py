"""Executor infrastructure: layer info, records, and exact integer conv."""

import numpy as np
import pytest

from repro.core.base import ConvLayerInfo, LayerRecord, float_conv2d, int_conv2d
from repro.core.masks import SensitivityMask
from repro.nn import Conv2d, Tensor


class TestConvLayerInfo:
    def test_from_conv(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1)
        info = ConvLayerInfo.from_conv(conv, "C1")
        assert info.macs_per_output == 27
        assert info.output_hw(16, 16) == (8, 8)

    def test_macs_per_output_1x1(self):
        conv = Conv2d(16, 4, 1)
        assert ConvLayerInfo.from_conv(conv, "x").macs_per_output == 16


class TestIntConv:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_float_conv_on_integers(self, rng, stride, padding):
        q = rng.integers(0, 16, size=(2, 3, 8, 8))
        qw = rng.integers(-8, 8, size=(4, 3, 3, 3))
        out = int_conv2d(q, qw, stride, padding)
        ref = float_conv2d(q.astype(float), qw.astype(float), None, stride, padding)
        np.testing.assert_array_equal(out, np.rint(ref).astype(np.int64))

    def test_exact_at_int16_extremes(self):
        """Worst-case INT16 accumulation must stay exact in float64 GEMM."""
        q = np.full((1, 64, 8, 8), 65535, dtype=np.int64)
        qw = np.full((1, 64, 3, 3), 32767, dtype=np.int64)
        out = int_conv2d(q, qw, 1, 1)
        # Central output accumulates 64*9 maximal products.
        expected = 65535 * 32767 * 64 * 9
        assert out.max() == expected

    def test_matches_autograd_conv(self, rng):
        """int_conv2d and nn.functional.conv2d agree on integer data."""
        from repro.nn import functional as F

        q = rng.integers(0, 4, size=(1, 2, 5, 5))
        qw = rng.integers(-2, 2, size=(3, 2, 3, 3))
        a = int_conv2d(q, qw, 1, 1)
        b = F.conv2d(Tensor(q.astype(float)), Tensor(qw.astype(float)), None, 1, 1).data
        np.testing.assert_array_equal(a, b.astype(np.int64))


class TestLayerRecord:
    def test_mask_accumulation(self):
        info = ConvLayerInfo("C1", 3, 4, 3, 1, 1)
        rec = LayerRecord(info=info)
        m1 = SensitivityMask(np.zeros((1, 4, 2, 2), dtype=bool), 0.5)
        m2 = SensitivityMask(np.ones((1, 4, 2, 2), dtype=bool), 0.5)
        rec.outputs_total = 32
        rec.add_mask(m1)
        rec.add_mask(m2)
        assert rec.sensitive_total == 16
        assert rec.sensitive_fraction == 0.5
        np.testing.assert_array_equal(rec.per_channel_sensitive, [4, 4, 4, 4])
        assert rec.last_mask is m2

    def test_empty_record_fractions(self):
        rec = LayerRecord(info=ConvLayerInfo("C1", 1, 1, 1, 1, 0))
        assert rec.sensitive_fraction == 0.0
        assert rec.insensitive_fraction == 1.0
