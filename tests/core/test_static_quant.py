"""Static INT-k executors and the FP32 reference."""

import numpy as np
import pytest

from repro.core.static_quant import FP32ConvExecutor, StaticQuantConvExecutor
from repro.nn import Conv2d


def calibrated(rng, x, bits, **kwargs):
    conv = Conv2d(3, 4, 3, padding=1, rng=rng)
    ex = StaticQuantConvExecutor(conv, "C1", bits=bits, **kwargs)
    ex.calibrate(x)
    ex.freeze()
    return ex


class TestFP32:
    def test_matches_reference(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        ex = FP32ConvExecutor(conv, "C1")
        x = rng.normal(size=(2, 3, 6, 6))
        np.testing.assert_array_equal(ex.run(x), ex.reference_forward(x))
        assert ex.record.macs["fp32"] > 0


class TestStaticQuant:
    def test_error_decreases_with_bits(self, rng):
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        errs = []
        for bits in (2, 4, 8, 16):
            ex = calibrated(rng, x, bits)
            errs.append(np.abs(ex.run(x) - ex.reference_forward(x)).mean())
        assert errs[0] > errs[1] > errs[2] > errs[3]

    def test_int16_nearly_exact(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, 16)
        err = np.abs(ex.run(x) - ex.reference_forward(x)).max()
        assert err < 1e-3

    def test_zero_point_correction_correct(self, rng):
        """Integer-domain computation must match float fake-quant conv."""
        from repro.core.base import float_conv2d
        from repro.quant.uniform import fake_quantize

        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, 8)
        out = ex.run(x)
        x_fq = fake_quantize(x, ex.qp_a)
        w_fq = ex._qw * ex.qp_w.scale
        ref = float_conv2d(x_fq, w_fq, ex.conv.bias.data, 1, 1)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_run_before_freeze_raises(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        ex = StaticQuantConvExecutor(conv, "C1", bits=8)
        with pytest.raises(RuntimeError):
            ex.run(rng.uniform(0, 1, (1, 3, 5, 5)))

    def test_mac_key_naming(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, 16)
        ex.run(x)
        assert "int16" in ex.record.macs

    def test_bits_lower_bound(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            StaticQuantConvExecutor(conv, "C1", bits=1)

    def test_negative_input_range_handled(self, rng):
        """First-layer inputs (not post-ReLU) may be negative."""
        x = rng.normal(size=(1, 3, 6, 6))
        ex = calibrated(rng, x, 8)
        out = ex.run(x)
        err = np.abs(out - ex.reference_forward(x)).mean()
        assert err < 0.1
