"""Sweep-time column-cache reuse: byte-identical results, one prep per
distinct layer input.

The tentpole claim: ``threshold_sweep`` / ``adaptive_threshold_search``
with the shared engine + :class:`SweepColumnCache` return *exactly* the
values the old fresh-engine-per-threshold procedure produced.  Verified
here by rebuilding that old procedure inline and comparing tuples with
``==`` (floats included — same ops in the same order, so bit equality is
the requirement, not approx).
"""

import numpy as np

from repro.core.odq import ODQConvExecutor
from repro.core.pipeline import QuantizedInferenceEngine, run_scheme
from repro.core.schemes import odq_scheme
from repro.core.threshold import (
    SweepColumnCache,
    adaptive_threshold_search,
    threshold_sweep,
)

THETAS = [2.0, 1.0, 0.5, 0.25]


def _fresh_engine_points(model, x_calib, x_val, y_val):
    """The pre-cache procedure: one engine built per threshold."""
    points = []
    for theta in THETAS:
        engine = QuantizedInferenceEngine(model, odq_scheme(float(theta)))
        try:
            engine.calibrate(x_calib)
            acc = engine.evaluate(x_val, y_val)
            sens = engine.mean_sensitive_fraction()
        finally:
            engine.restore()
        points.append((float(theta), acc, 1.0 - sens, sens))
    return points


class TestSweepEquivalence:
    def test_sweep_identical_to_fresh_engines(
        self, trained_resnet, tiny_dataset, calib_batch
    ):
        model, _ = trained_resnet
        x_calib = calib_batch[:16]
        x_val, y_val = tiny_dataset.x_test[:32], tiny_dataset.y_test[:32]

        expected = _fresh_engine_points(model, x_calib, x_val, y_val)
        points = threshold_sweep(model, x_calib, x_val, y_val, THETAS)
        got = [
            (p.threshold, p.accuracy, p.insensitive_fraction, p.sensitive_fraction)
            for p in points
        ]
        assert got == expected  # byte-identical, not approx

    def test_sweep_restores_model(self, trained_resnet, tiny_dataset, calib_batch):
        """The shared engine must leave the model weights untouched."""
        model, _ = trained_resnet
        before = [p.data.copy() for p in model.parameters()]
        threshold_sweep(
            model, calib_batch[:16],
            tiny_dataset.x_test[:16], tiny_dataset.y_test[:16], THETAS[:2],
        )
        after = model.parameters()
        assert all(np.array_equal(b, a.data) for b, a in zip(before, after))

    def test_search_matches_old_procedure(
        self, trained_resnet, tiny_dataset, calib_batch
    ):
        """Halving search through the shared engine reproduces the
        fresh-run-per-candidate accuracies exactly."""
        model, _ = trained_resnet
        x_calib = calib_batch[:16]
        x_val, y_val = tiny_dataset.x_test[:32], tiny_dataset.y_test[:32]
        result = adaptive_threshold_search(
            model, x_calib, x_val, y_val,
            max_accuracy_drop=-1.0,  # force full trace
            start_threshold=1.0, max_halvings=3,
        )
        for theta, acc in result.trace:
            ref, _ = run_scheme(
                model, odq_scheme(theta), x_calib, x_val, y_val
            )
            assert acc == ref


class TestCacheAccounting:
    def test_first_conv_preps_once_per_sweep(self, trained_resnet, calib_batch):
        """The network input never depends on the threshold, so the first
        conv's im2col prep must run exactly once across the whole sweep;
        deeper convs see threshold-dependent inputs and may miss."""
        model, _ = trained_resnet
        x = calib_batch[:8]
        engine = QuantizedInferenceEngine(model, odq_scheme(0.0))
        cache = SweepColumnCache()
        try:
            installed = cache.install(engine)
            assert installed >= 1
            engine.calibrate(x)
            odq_execs = [
                ex for ex in engine.executors.values()
                if isinstance(ex, ODQConvExecutor)
            ]
            first = odq_execs[0].info.name
            for theta in THETAS:
                for ex in odq_execs:
                    ex.threshold = float(theta)
                engine.reset_records()
                engine.forward(x)
        finally:
            cache.uninstall()
            engine.restore()
        stats = cache.stats()
        assert stats["prep_calls"][first] == 1
        assert stats["hits"] >= len(THETAS) - 1
        # Every layer ran every iteration; misses are bounded by layers x thetas.
        assert stats["misses"] <= len(odq_execs) * len(THETAS)

    def test_uninstall_detaches_provider(self, trained_resnet, calib_batch):
        model, _ = trained_resnet
        engine = QuantizedInferenceEngine(model, odq_scheme(0.5))
        cache = SweepColumnCache()
        try:
            cache.install(engine)
            cache.uninstall()
            for ex in engine.executors.values():
                if isinstance(ex, ODQConvExecutor):
                    assert ex.cache_provider is None
        finally:
            engine.restore()

    def test_lru_eviction_bounds_entries(self):
        """Per-layer capacity is enforced via LRU eviction."""

        class _FakeExec:
            class info:
                name = "conv"

            def _fresh_cache(self, x, compensate):
                return object()

        cache = SweepColumnCache(capacity_per_layer=2)
        ex = _FakeExec()
        xs = [np.full((4,), float(i)) for i in range(5)]
        for x in xs:
            cache(ex, x, True)
        assert cache.stats()["entries"] <= 2
        assert cache.stats()["prep_calls"]["conv"] == 5
        # Most-recent entry still hits.
        cache(ex, xs[-1], True)
        assert cache.hits == 1

    def test_fingerprint_distinguishes_dtype_and_shape(self):
        x = np.arange(16, dtype=np.float64)
        assert SweepColumnCache.fingerprint(x) != SweepColumnCache.fingerprint(
            x.astype(np.float32)
        )
        assert SweepColumnCache.fingerprint(x) != SweepColumnCache.fingerprint(
            x.reshape(4, 4)
        )
        assert SweepColumnCache.fingerprint(x) == SweepColumnCache.fingerprint(
            x.copy()
        )


class TestPackedWeightsStore:
    """Freeze-time packed-operand reuse (content-addressed, process-wide).

    The sweep rebuilds engines whose quantized weights are identical
    across thresholds; re-freezing must hit the store instead of
    re-packing, and hits must alias the same PackedConvWeights object.
    """

    def test_refreeze_same_weights_hits_store(
        self, trained_resnet, calib_batch
    ):
        from repro.core.colcache import packed_store

        model, _ = trained_resnet
        x = calib_batch[:8]
        store = packed_store()
        store.clear()

        e1 = QuantizedInferenceEngine(model, odq_scheme(0.5))
        try:
            e1.calibrate(x)
            odq1 = [
                ex for ex in e1.executors.values()
                if isinstance(ex, ODQConvExecutor)
            ]
            packed1 = {ex.info.name: ex._packed for ex in odq1}
            s1 = store.stats()
            # First freeze packs every distinct conv once, hits nothing.
            assert s1["misses"] == len(odq1)
            assert s1["hits"] == 0
        finally:
            e1.restore()

        # Different threshold, same weights: packing is theta-independent,
        # so the second freeze must be pure hits — zero new packs.
        e2 = QuantizedInferenceEngine(model, odq_scheme(0.25))
        try:
            e2.calibrate(x)
            odq2 = [
                ex for ex in e2.executors.values()
                if isinstance(ex, ODQConvExecutor)
            ]
            s2 = store.stats()
            assert s2["misses"] == s1["misses"]
            assert s2["hits"] == len(odq2)
            for ex in odq2:
                assert ex._packed is packed1[ex.info.name]
        finally:
            e2.restore()
