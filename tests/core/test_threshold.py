"""Adaptive threshold search and the Fig.-22 sweep."""

import pytest

from repro.core.threshold import (
    adaptive_threshold_search,
    initial_threshold,
    threshold_sweep,
)


class TestInitialThreshold:
    def test_positive_and_in_distribution(self, trained_resnet, calib_batch):
        model, _ = trained_resnet
        theta = initial_threshold(model, calib_batch[:16], percentile=75.0)
        assert theta > 0
        # A 75th-percentile threshold must leave some outputs on each side.
        theta_hi = initial_threshold(model, calib_batch[:16], percentile=99.0)
        assert theta_hi > theta


class TestAdaptiveSearch:
    def test_halving_trace(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        result = adaptive_threshold_search(
            model,
            calib_batch[:16],
            tiny_dataset.x_test[:48],
            tiny_dataset.y_test[:48],
            max_accuracy_drop=0.05,
            start_threshold=1.0,
            max_halvings=6,
        )
        # Thresholds in the trace halve each step.
        thetas = [t for t, _ in result.trace]
        for a, b in zip(thetas, thetas[1:]):
            assert b == pytest.approx(a / 2)
        assert result.threshold in thetas
        assert 0 <= result.accuracy <= 1

    def test_converged_flag_with_loose_tolerance(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        result = adaptive_threshold_search(
            model,
            calib_batch[:16],
            tiny_dataset.x_test[:32],
            tiny_dataset.y_test[:32],
            max_accuracy_drop=1.0,  # any accuracy accepted
            start_threshold=0.5,
            max_halvings=2,
        )
        assert result.converged
        assert len(result.trace) == 1
        assert result.accuracy_drop <= 1.0

    def test_fallback_to_best_when_not_converged(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        result = adaptive_threshold_search(
            model,
            calib_batch[:16],
            tiny_dataset.x_test[:32],
            tiny_dataset.y_test[:32],
            max_accuracy_drop=-1.0,  # impossible: forces exhaustion
            start_threshold=2.0,
            max_halvings=3,
        )
        assert not result.converged
        best_acc = max(acc for _, acc in result.trace)
        assert result.accuracy == best_acc


class TestSweep:
    def test_insensitivity_monotone_in_threshold(self, trained_resnet, tiny_dataset, calib_batch):
        """Fig. 22's right axis: higher threshold => more INT2 outputs."""
        model, _ = trained_resnet
        points = threshold_sweep(
            model,
            calib_batch[:16],
            tiny_dataset.x_test[:32],
            tiny_dataset.y_test[:32],
            thresholds=[0.05, 0.4, 2.0],
        )
        fracs = [p.insensitive_fraction for p in points]
        # End-to-end monotonicity is only approximate (deeper layers see
        # threshold-dependent inputs), but the extremes must order and the
        # highest threshold must make most outputs INT2.
        assert fracs[2] >= fracs[0]
        assert fracs[2] > 0.5
        for p in points:
            assert p.sensitive_fraction + p.insensitive_fraction == pytest.approx(1.0)
