"""Inference-engine corner cases: batching, mixed schemes, record hygiene."""

import numpy as np
import pytest

from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import odq_scheme, static_scheme
from repro.models import resnet20


@pytest.fixture
def model(rng):
    m = resnet20(scale=0.25, rng=rng)
    m.eval()
    return m


class TestBatching:
    def test_calibration_batch_splitting(self, model, rng):
        """Calibrating in several small batches equals one big batch for
        min/max observers."""
        x = rng.uniform(0, 1, (32, 3, 16, 16))
        e1 = QuantizedInferenceEngine(model, static_scheme(8))
        e1.calibrate(x, batch_size=8)
        qp_small = [ex.qp_a for ex in e1.executors.values()]
        e1.restore()

        e2 = QuantizedInferenceEngine(model, static_scheme(8))
        e2.calibrate(x, batch_size=32)
        qp_big = [ex.qp_a for ex in e2.executors.values()]
        e2.restore()

        for a, b in zip(qp_small, qp_big):
            assert a.scale == pytest.approx(b.scale)
            assert a.zero_point == b.zero_point

    def test_evaluate_batching_invariant(self, model, rng):
        x = rng.uniform(0, 1, (24, 3, 16, 16))
        y = rng.integers(0, 10, 24)
        engine = QuantizedInferenceEngine(model, static_scheme(8))
        engine.calibrate(x[:8])
        a = engine.evaluate(x, y, batch_size=6)
        b = engine.evaluate(x, y, batch_size=24)
        engine.restore()
        assert a == b


class TestRecordHygiene:
    def test_mac_totals_accumulate_across_forwards(self, model, rng):
        x = rng.uniform(0, 1, (4, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, odq_scheme(0.3))
        engine.calibrate(x)
        engine.forward(x)
        once = dict(engine.total_macs())
        engine.forward(x)
        twice = engine.total_macs()
        engine.restore()
        for k in once:
            assert twice[k] == 2 * once[k]

    def test_calibration_does_not_touch_records(self, model, rng):
        x = rng.uniform(0, 1, (4, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, odq_scheme(0.3))
        engine.calibrate(x)
        assert all(r.outputs_total == 0 for r in engine.records.values())
        engine.restore()

    def test_keep_masks_false_drops_masks(self, model, rng):
        x = rng.uniform(0, 1, (2, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, odq_scheme(0.3, keep_masks=False))
        engine.calibrate(x)
        engine.forward(x)
        assert all(r.last_mask is None for r in engine.records.values())
        # Aggregates survive even without stored masks.
        assert all(r.per_channel_sensitive is not None for r in engine.records.values())
        engine.restore()


class TestModelInteraction:
    def test_model_trainable_after_restore(self, model, tiny_dataset):
        from repro.nn import SGD, Trainer

        engine = QuantizedInferenceEngine(model, static_scheme(8))
        engine.calibrate(tiny_dataset.x_train[:8])
        engine.restore()
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01), batch_size=16)
        history = trainer.fit(tiny_dataset.x_train[:32], tiny_dataset.y_train[:32], epochs=1)
        assert np.isfinite(history.train_loss[0])

    def test_two_engines_sequential_same_result(self, model, rng):
        x = rng.uniform(0, 1, (8, 3, 16, 16))
        outs = []
        for _ in range(2):
            engine = QuantizedInferenceEngine(model, odq_scheme(0.3))
            engine.calibrate(x)
            outs.append(engine.forward(x))
            engine.restore()
        np.testing.assert_array_equal(outs[0], outs[1])
