"""Numerical regression anchors.

Pin down exact values of the deterministic primitives so accidental
semantic drift (a changed rounding rule, a shifted plane, a different
zero-point convention) fails loudly instead of silently skewing every
figure downstream.
"""

import numpy as np

from repro.core.base import int_conv2d
from repro.core.odq import odq_mixed_conv, odq_weight_qparams
from repro.quant.bitsplit import split_planes
from repro.quant.uniform import affine_qparams, quantize, symmetric_qparams


class TestAnchors:
    def test_affine_qparams_unit_range(self):
        qp = affine_qparams(0.0, 1.0, 4)
        assert qp.zero_point == 0
        assert qp.scale == 1.0 / 15

    def test_symmetric_qparams_unit_range(self):
        qp = symmetric_qparams(1.0, 4)
        assert qp.scale == 1.0 / 7

    def test_quantize_midpoints_round_half_even(self):
        qp = affine_qparams(0.0, 1.0, 4)
        # numpy rounds half to even: 0.5/scale = 7.5 -> 8.
        assert quantize(np.array([0.5]), qp)[0] == 8

    def test_sign_magnitude_full_int4_table(self):
        q = np.arange(-8, 8, dtype=np.int64)
        qp = symmetric_qparams(1.0, 4)
        planes = split_planes(q, qp, 2)
        np.testing.assert_array_equal(
            planes.high, [-2, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1]
        )
        np.testing.assert_array_equal(
            planes.low, [0, -3, -2, -1, 0, -3, -2, -1, 0, 1, 2, 3, 0, 1, 2, 3]
        )

    def test_int_conv_fixed_example(self):
        q = np.arange(16, dtype=np.int64).reshape(1, 1, 4, 4)
        qw = np.ones((1, 1, 3, 3), dtype=np.int64)
        out = int_conv2d(q, qw, 1, 0)
        # 3x3 sums of a raster 4x4: top-left window sums 0+1+2+4+5+6+8+9+10.
        assert out[0, 0, 0, 0] == 45
        assert out[0, 0, 1, 1] == 90

    def test_odq_mixed_conv_fixed_example(self):
        """A fully hand-checkable single-pixel layer."""
        x = np.array([[[[1.0]]]])          # one input pixel, value 1.0
        w = np.array([[[[0.5]]]])          # one 1x1 weight
        qp_a = affine_qparams(0.0, 1.0, 4)  # scale 1/15, zp 0
        qp_w = odq_weight_qparams(w, 4, 100.0)  # scale 0.5/7
        r = odq_mixed_conv(x, w, None, 1, 0, threshold=0.0,
                           qp_a=qp_a, qp_w=qp_w, compensate_low_bits=False)
        # q = 15 (q_h=3), qw = 7 (w_h=1): full = 15*7*s, partial = (3*1<<4)*s.
        s = qp_a.scale * qp_w.scale
        assert r["full"][0, 0, 0, 0] == 105 * s
        assert r["partial"][0, 0, 0, 0] == 48 * s
        assert bool(r["mask"].mask[0, 0, 0, 0]) is True  # |48s| > 0
        assert r["out"][0, 0, 0, 0] == 105 * s
