"""Motivation metrics (Figs 2-5): buckets, precision loss, extra precision."""

import numpy as np
import pytest

from repro.core.drq import DRQConvExecutor
from repro.core.stats import (
    BUCKET_LABELS,
    _bucket_shares,
    input_fraction_per_output,
    motivation_stats_for_layer,
    odq_precision_loss_for_layer,
)
from repro.nn import Conv2d


class TestBuckets:
    def test_shares_sum_to_one(self):
        shares = _bucket_shares(np.array([0.1, 0.3, 0.6, 0.9]))
        assert shares.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(shares, [0.25, 0.25, 0.25, 0.25])

    def test_empty_input(self):
        assert _bucket_shares(np.array([])).sum() == 0.0

    def test_boundary_values(self):
        # 1.0 must land in the last bucket (edges are right-open except last).
        shares = _bucket_shares(np.array([0.0, 0.25, 1.0]))
        assert shares[-1] > 0

    def test_label_count_matches(self):
        assert len(_bucket_shares(np.array([0.5]))) == len(BUCKET_LABELS)


class TestInputFraction:
    def test_all_masked_gives_one(self):
        mask = np.ones((1, 1, 6, 6), dtype=bool)
        frac = input_fraction_per_output(mask, kernel=3, stride=1, padding=0)
        np.testing.assert_allclose(frac, 1.0)

    def test_none_masked_gives_zero(self):
        mask = np.zeros((1, 1, 6, 6), dtype=bool)
        frac = input_fraction_per_output(mask, kernel=3, stride=1, padding=0)
        np.testing.assert_allclose(frac, 0.0)

    def test_half_masked_window(self):
        mask = np.zeros((1, 1, 2, 2), dtype=bool)
        mask[0, 0, 0, :] = True  # top row of a single 2x2 window
        frac = input_fraction_per_output(mask, kernel=2, stride=1, padding=0)
        assert frac[0, 0, 0, 0] == pytest.approx(0.5)

    def test_padding_counts_as_unmasked(self):
        mask = np.ones((1, 1, 2, 2), dtype=bool)
        frac = input_fraction_per_output(mask, kernel=3, stride=1, padding=1)
        # Corner window: 4 of 9 pixels are real (masked), 5 are padding.
        assert frac[0, 0, 0, 0] == pytest.approx(4 / 9)


class TestMotivationStats:
    @pytest.fixture
    def executor(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        ex = DRQConvExecutor(conv, "C1", hi_bits=8, lo_bits=4, target_sensitive=0.5)
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex.calibrate(x)
        ex.freeze()
        return ex, x

    def test_stats_fields_valid(self, executor):
        ex, x = executor
        stats = motivation_stats_for_layer(ex, x, output_threshold=0.2)
        assert stats.lowprec_input_buckets.sum() == pytest.approx(1.0) or \
            stats.lowprec_input_buckets.sum() == 0.0
        assert stats.precision_loss_sensitive >= 0
        assert stats.extra_precision_insensitive >= 0
        assert 0 <= stats.sensitive_fraction <= 1

    def test_unfrozen_rejected(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        ex = DRQConvExecutor(conv, "C1")
        with pytest.raises(RuntimeError):
            motivation_stats_for_layer(ex, np.zeros((1, 3, 5, 5)), 0.1)

    def test_lowprec_noise_positive_when_insensitive_inputs_feed_sensitive_outputs(
        self, executor
    ):
        """The Fig.-3 phenomenon: DRQ's mixed precision perturbs sensitive
        outputs whenever any of their inputs were low-precision."""
        ex, x = executor
        stats = motivation_stats_for_layer(ex, x, output_threshold=0.1)
        if stats.sensitive_fraction > 0:
            assert stats.precision_loss_sensitive > 0


class TestODQPrecisionLoss:
    def test_zero_when_identical(self):
        o = np.random.default_rng(0).normal(size=(1, 2, 3, 3))
        assert odq_precision_loss_for_layer(o, o.copy(), 0.1) == 0.0

    def test_only_sensitive_outputs_counted(self):
        o_fp = np.array([[[[5.0, 0.01]]]]).reshape(1, 1, 1, 2)
        o_odq = o_fp + np.array([0.1, 99.0]).reshape(1, 1, 1, 2)
        # Threshold 1.0: only the 5.0 output is sensitive.
        loss = odq_precision_loss_for_layer(o_fp, o_odq, 1.0)
        assert loss == pytest.approx(0.1)

    def test_no_sensitive_outputs(self):
        o = np.zeros((1, 1, 2, 2))
        assert odq_precision_loss_for_layer(o, o + 1, 0.5) == 0.0
