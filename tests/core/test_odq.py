"""ODQ executor: the paper's Eq.-3 semantics, masks, and MAC accounting."""

import numpy as np
import pytest

from repro.core.base import float_conv2d
from repro.core.odq import ODQConvExecutor
from repro.nn import Conv2d
from repro.quant.bitsplit import split_planes
from repro.quant.uniform import quantize


def make_executor(rng, threshold=0.3, in_c=3, out_c=4, k=3, stride=1, padding=1,
                  bias=True, **kwargs):
    conv = Conv2d(in_c, out_c, k, stride=stride, padding=padding, bias=bias, rng=rng)
    ex = ODQConvExecutor(conv, "C1", threshold=threshold, **kwargs)
    return ex


def calibrated(rng, x, **kwargs):
    ex = make_executor(rng, **kwargs)
    ex.calibrate(x)
    ex.freeze()
    return ex


class TestLifecycle:
    def test_run_before_freeze_raises(self, rng):
        ex = make_executor(rng)
        with pytest.raises(RuntimeError):
            ex.run(rng.uniform(0, 1, (1, 3, 6, 6)))

    def test_negative_threshold_rejected(self, rng):
        with pytest.raises(ValueError):
            make_executor(rng, threshold=-0.1)

    def test_bad_bit_split_rejected(self, rng):
        with pytest.raises(ValueError):
            make_executor(rng, low_bits=4, total_bits=4)


class TestEq3Semantics:
    """The heart of the reproduction: outputs decompose exactly per Eq. 3."""

    def test_full_result_equals_static_int4(self, rng):
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        ex = calibrated(rng, x)
        # Reconstruct what an INT4 static-quant conv computes, by hand.
        qp_a = ex._qp_a_for(x)
        q = quantize(x, qp_a)
        deq_x = (q - qp_a.zero_point) * qp_a.scale
        deq_w = ex._qw * ex.qp_w.scale
        ref = float_conv2d(deq_x, deq_w, ex.conv.bias.data, 1, 1)
        # Padded positions must behave as real zeros (zero-point padding).
        np.testing.assert_allclose(ex.full_result(x), ref, atol=1e-9)

    def test_predictor_plus_cross_terms_equals_full(self, rng):
        """full - partial == the three executor cross terms (Eq. 3)."""
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        # Disable the E[q_l] compensation: the raw partial is exactly the
        # shifted HH term, so full - partial is exactly the cross terms.
        ex = calibrated(rng, x, in_c=2, out_c=3, padding=1,
                        compensate_low_bits=False)

        qp_a = ex._qp_a_for(x)
        from repro.utils.im2col import pad_nchw
        q = quantize(x, qp_a)
        q = pad_nchw(q, 1, value=qp_a.zero_point).astype(np.int64)
        a_planes = split_planes(q, qp_a, ex.low_bits)
        # Assemble the executor-side cross terms via explicit convolutions.
        from repro.core.base import int_conv2d

        hl = int_conv2d(a_planes.high, split_planes(ex._qw, ex.qp_w, 2).low,
                        ex.conv.stride, 0) << 2
        lh = int_conv2d(a_planes.low, split_planes(ex._qw, ex.qp_w, 2).high,
                        ex.conv.stride, 0) << 2
        ll = int_conv2d(a_planes.low, split_planes(ex._qw, ex.qp_w, 2).low,
                        ex.conv.stride, 0)
        remaining = (hl + lh + ll) * qp_a.scale * ex.qp_w.scale

        full = ex.full_result(x)
        partial = ex.predict_partial(x)
        np.testing.assert_allclose(full - partial, remaining, atol=1e-9)

    def test_output_mixes_full_and_partial_by_mask(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.3)
        out = ex.run(x)
        mask = ex.record.last_mask.mask
        full = ex.full_result(x)
        partial = ex.predict_partial(x)
        np.testing.assert_allclose(out[mask], full[mask], atol=1e-12)
        np.testing.assert_allclose(out[~mask], partial[~mask], atol=1e-12)

    def test_zero_threshold_everything_sensitive_matches_int4(self, rng):
        """theta=0 makes ODQ equivalent to static INT4 (every nonzero output)."""
        x = rng.uniform(0.1, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.0)
        out = ex.run(x)
        full = ex.full_result(x)
        mask = ex.record.last_mask.mask
        np.testing.assert_allclose(out[mask], full[mask])
        assert ex.record.sensitive_fraction > 0.8

    def test_infinite_threshold_pure_predictor(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=np.inf)
        out = ex.run(x)
        np.testing.assert_allclose(out, ex.predict_partial(x))
        assert ex.record.sensitive_total == 0


class TestPredictionQuality:
    def test_partial_correlates_with_full(self, rng):
        """The HBS partial must predict output magnitude (Section 3's premise)."""
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = calibrated(rng, x)
        full = ex.full_result(x).reshape(-1)
        partial = ex.predict_partial(x).reshape(-1)
        corr = np.corrcoef(np.abs(full), np.abs(partial))[0, 1]
        assert corr > 0.7

    def test_low_bit_compensation_improves_prediction(self):
        """The E[q_l]*sum(w) correction must reduce the predictor's error
        (the reason it is on by default).  Averaged over several random
        layers — the correction is statistical, not per-instance."""
        errs_plain, errs_comp = [], []
        for seed in range(3):
            r = np.random.default_rng(seed)
            x = np.abs(r.normal(size=(4, 16, 10, 10))) * 0.3
            conv = Conv2d(16, 8, 3, padding=1, rng=r)
            pair = []
            for comp in (False, True):
                ex = ODQConvExecutor(conv, "C", threshold=0.2,
                                     compensate_low_bits=comp)
                ex.calibrate(x)
                ex.freeze()
                pair.append(ex)
            full = pair[0].full_result(x)
            errs_plain.append(np.abs(full - pair[0].predict_partial(x)).mean())
            errs_comp.append(np.abs(full - pair[1].predict_partial(x)).mean())
        assert np.mean(errs_comp) < np.mean(errs_plain)

    def test_precision_loss_small_on_sensitive(self, rng):
        """Sensitive outputs are exact w.r.t. INT4; error vs FP32 is only
        the quantization rounding (the Section-6.1 per-layer numbers)."""
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = calibrated(rng, x, threshold=0.2)
        out = ex.run(x)
        ref = ex.reference_forward(x)
        mask = ex.record.last_mask.mask
        if mask.any():
            loss_sensitive = np.abs(out - ref)[mask].mean()
            loss_insensitive = np.abs(out - ref)[~mask].mean()
            assert loss_sensitive < loss_insensitive


class TestAccounting:
    def test_mac_counts(self, rng):
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.3)
        ex.run(x)
        n_out = 2 * 4 * 6 * 6
        mpo = 3 * 9
        assert ex.record.macs["pred_int2"] == n_out * mpo
        assert ex.record.macs["exec_int4"] == ex.record.sensitive_total * mpo

    def test_records_accumulate_across_batches(self, rng):
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        ex = calibrated(rng, x)
        ex.run(x)
        first = ex.record.outputs_total
        ex.run(x)
        assert ex.record.outputs_total == 2 * first

    def test_sensitivity_mask_method_matches_run(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x)
        m1 = ex.sensitivity_mask(x)
        ex.run(x)
        np.testing.assert_array_equal(m1.mask, ex.record.last_mask.mask)

    def test_no_bias_layer(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, bias=False)
        out = ex.run(x)
        assert np.isfinite(out).all()

    def test_collect_partials(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = make_executor(rng, collect_partials=True)
        ex.calibrate(x)
        ex.freeze()
        ex.run(x)
        assert "partial_abs_samples" in ex.record.extra
