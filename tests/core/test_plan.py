"""Compiled inference plans (:mod:`repro.core.plan`).

The tentpole claim: planned execution is *bit-identical* (``==``, not
approx) to the legacy per-call path — across conv geometry (stride,
padding, bias), every exec path, and changing batch shapes — because
every plan step mirrors the exact expression tree the Tensor ops
evaluate.  Also pinned here: shape-change recompiles, staleness
invalidation, LRU bounding of the per-engine plan cache, and clone
isolation.
"""

import numpy as np
import pytest

from repro.core.odq import ODQConvExecutor
from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import odq_scheme
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

SIZE = 12  # input spatial size; small on purpose (many engines built here)


def _conv_net(stride: int, padding: int, bias: bool, seed: int = 0):
    rng = np.random.default_rng(seed)
    o1 = (SIZE + 2 * padding - 3) // stride + 1
    feat = o1 // 2
    return Sequential(
        Conv2d(2, 4, 3, stride=stride, padding=padding, bias=bias, rng=rng),
        ReLU(),
        Conv2d(4, 4, 3, padding=1, bias=bias, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(4 * feat * feat, 5, rng=rng),
    )


def _calibrated_engine(model, exec_path: str = "auto", threshold: float = 0.5):
    rng = np.random.default_rng(7)
    x_calib = rng.normal(0.0, 1.0, size=(16, 2, SIZE, SIZE))
    engine = QuantizedInferenceEngine(
        model, odq_scheme(threshold, exec_path=exec_path)
    )
    engine.calibrate(x_calib)
    return engine


def _batch(n: int, seed: int = 42) -> np.ndarray:
    return np.random.default_rng(seed).normal(0.0, 1.0, size=(n, 2, SIZE, SIZE))


def _planned_vs_unplanned(engine, x) -> tuple[np.ndarray, np.ndarray]:
    engine.use_plan = False
    ref = engine.infer(x)
    engine.use_plan = True
    out = engine.infer(x)
    return out, ref


class TestPlannedBitExactness:
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("bias", [True, False])
    def test_geometry_grid(self, stride, padding, bias):
        engine = _calibrated_engine(_conv_net(stride, padding, bias))
        try:
            for n in (1, 3, 8):
                x = _batch(n, seed=n)
                out, ref = _planned_vs_unplanned(engine, x)
                assert out.dtype == ref.dtype
                assert np.array_equal(out, ref)  # bit-identical, not approx
        finally:
            engine.restore()
        stats = engine.plan_stats()
        assert stats["compiles"] >= 1

    @pytest.mark.parametrize("exec_path", ["auto", "dense", "sparse"])
    def test_exec_path_grid(self, exec_path):
        engine = _calibrated_engine(_conv_net(1, 1, True), exec_path=exec_path)
        try:
            x = _batch(4)
            out, ref = _planned_vs_unplanned(engine, x)
            assert np.array_equal(out, ref)
            # A second planned run executes the compiled steps (the
            # compile's traced call doubles as the first inference), and
            # it must actually take the frozen fast path, not delegate.
            again = engine.infer(x)
            assert np.array_equal(again, ref)
            plans = engine.plan_stats()["plans"]
            assert plans and plans[0]["mode"] == "flat"
            assert plans[0]["fast_conv_steps"] == plans[0]["conv_steps"] == 2
            assert plans[0]["dispatch_frozen"] > 0
        finally:
            engine.restore()

    def test_threshold_change_stays_exact_without_recompile(self):
        """effective_threshold is read per call (deliberately not frozen),
        so sweeping theta must not invalidate the plan — and must still
        match the unplanned path bit-for-bit."""
        engine = _calibrated_engine(_conv_net(1, 1, True))
        try:
            x = _batch(4)
            engine.infer(x)  # compile
            compiles = engine.plan_stats()["compiles"]
            for ex in engine.executors.values():
                if isinstance(ex, ODQConvExecutor):
                    ex.threshold = 0.05
            out, ref = _planned_vs_unplanned(engine, x)
            assert np.array_equal(out, ref)
            assert engine.plan_stats()["compiles"] == compiles
        finally:
            engine.restore()

    def test_graph_mode_residual_model(self, trained_resnet, calib_batch):
        """Residual adds break the flat-chain identity check; the plan
        falls back to graph mode (model drives, conv steps pre-bound) and
        must stay bit-identical."""
        model, _ = trained_resnet
        engine = QuantizedInferenceEngine(model, odq_scheme(0.5))
        try:
            engine.calibrate(calib_batch[:16])
            x = calib_batch[:4]
            out, ref = _planned_vs_unplanned(engine, x)
            assert np.array_equal(out, ref)
            plans = engine.plan_stats()["plans"]
            assert plans and plans[0]["mode"] == "graph"
        finally:
            engine.restore()


class TestPlanLifecycle:
    def test_recompile_on_shape_change_then_hit(self):
        engine = _calibrated_engine(_conv_net(1, 1, True))
        try:
            engine.infer(_batch(4))
            engine.infer(_batch(2))
            engine.infer(_batch(4))  # back to the first shape: cache hit
            stats = engine.plan_stats()
            assert stats["compiles"] == 2
            assert stats["hits"] == 1
            assert stats["cached"] == 2
            shapes = {tuple(p["input_shape"]) for p in stats["plans"]}
            assert shapes == {(4, 2, SIZE, SIZE), (2, 2, SIZE, SIZE)}
        finally:
            engine.restore()

    def test_lru_bound_evicts_oldest(self):
        engine = _calibrated_engine(_conv_net(1, 1, True))
        try:
            engine.plan_cache_limit = 2
            for n in (1, 2, 3, 4):
                engine.infer(_batch(n))
            stats = engine.plan_stats()
            assert stats["compiles"] == 4
            assert stats["evictions"] == 2
            assert stats["cached"] == 2
            # Oldest shapes are gone; most-recent two remain.
            shapes = {tuple(p["input_shape"])[0] for p in stats["plans"]}
            assert shapes == {3, 4}
        finally:
            engine.restore()

    def test_stale_plan_invalidated_on_executor_change(self):
        """Flipping a frozen decision (exec_path) must invalidate the
        cached plan, recompile, and still match the unplanned path."""
        engine = _calibrated_engine(_conv_net(1, 1, True), exec_path="dense")
        try:
            x = _batch(4)
            engine.infer(x)
            for ex in engine.executors.values():
                if isinstance(ex, ODQConvExecutor):
                    ex.exec_path = "sparse"
            out, ref = _planned_vs_unplanned(engine, x)
            assert np.array_equal(out, ref)
            stats = engine.plan_stats()
            assert stats["invalidated"] >= 1
            assert stats["compiles"] >= 2
        finally:
            engine.restore()

    def test_clone_gets_fresh_plan_state(self):
        engine = _calibrated_engine(_conv_net(1, 1, True))
        try:
            x = _batch(4)
            engine.infer(x)
            clone = engine.clone()
            stats = clone.plan_stats()
            assert stats["compiles"] == 0 and stats["cached"] == 0
            out = clone.infer(x)
            ref = engine.infer(x)
            assert np.array_equal(out, ref)
        finally:
            engine.restore()

    def test_no_plan_flag_bypasses_compilation(self):
        engine = _calibrated_engine(_conv_net(1, 1, True))
        try:
            engine.use_plan = False
            engine.infer(_batch(4))
            stats = engine.plan_stats()
            assert stats["compiles"] == 0 and not stats["enabled"]
        finally:
            engine.restore()
