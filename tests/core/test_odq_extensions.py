"""ODQ beyond the paper's 4/2 instance.

Section 5.1: "ODQ is not limited to 4-bit and 2-bit quantization and can
be easily extended to support other types of precision, e.g., INT8."
These tests exercise the 8/4 instance and other operating points.
"""

import numpy as np
import pytest

from repro.core.odq import ODQConvExecutor
from repro.core.pipeline import run_scheme
from repro.core.schemes import odq_scheme
from repro.nn import Conv2d


def calibrated(rng, x, **kwargs):
    conv = Conv2d(3, 4, 3, padding=1, rng=rng)
    ex = ODQConvExecutor(conv, "C1", **kwargs)
    ex.calibrate(x)
    ex.freeze()
    return ex


class TestODQ84:
    def test_mixed_semantics_hold(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.2, total_bits=8, low_bits=4)
        out = ex.run(x)
        mask = ex.record.last_mask.mask
        np.testing.assert_allclose(out[mask], ex.full_result(x)[mask])
        np.testing.assert_allclose(out[~mask], ex.predict_partial(x)[~mask])

    def test_more_bits_better_fidelity(self, rng):
        """ODQ 8/4 tracks the FP reference better than ODQ 4/2 — both in
        the full result and in the predictor partial."""
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        errs = {}
        for total, low in [(4, 2), (8, 4)]:
            ex = calibrated(rng, x, threshold=0.2, total_bits=total, low_bits=low)
            ref = ex.reference_forward(x)
            errs[(total, low)] = np.abs(ex.full_result(x) - ref).mean()
        assert errs[(8, 4)] < errs[(4, 2)]

    def test_scheme_factory_plumbs_bits(self, rng):
        scheme = odq_scheme(0.2, total_bits=8, low_bits=4)
        ex = scheme.make_executor(Conv2d(2, 2, 3, rng=rng), "c")
        assert ex.total_bits == 8 and ex.low_bits == 4

    def test_end_to_end_odq84(self, trained_resnet, tiny_dataset, calib_batch):
        """ODQ 8/4 post-training accuracy must approach INT8 static —
        higher precision means even insensitive partials are decent."""
        from repro.core.schemes import static_scheme

        model, _ = trained_resnet
        acc84, _ = run_scheme(
            model, odq_scheme(0.1, total_bits=8, low_bits=4),
            calib_batch, tiny_dataset.x_test, tiny_dataset.y_test,
        )
        acc8, _ = run_scheme(
            model, static_scheme(8),
            calib_batch, tiny_dataset.x_test, tiny_dataset.y_test,
        )
        assert acc84 >= acc8 - 0.25


class TestUnevenSplits:
    @pytest.mark.parametrize("total,low", [(4, 1), (4, 3), (6, 2)])
    def test_other_splits_still_exact(self, rng, total, low):
        """Eq.-3 semantics hold for any high/low partition."""
        x = rng.uniform(0, 1, (1, 3, 5, 5))
        ex = calibrated(rng, x, threshold=0.2, total_bits=total, low_bits=low)
        out = ex.run(x)
        mask = ex.record.last_mask.mask
        np.testing.assert_allclose(out[mask], ex.full_result(x)[mask])
