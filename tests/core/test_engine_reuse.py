"""Engine reuse regression tests (the serving contract).

A long-lived :class:`QuantizedInferenceEngine` must be safe to call
repeatedly: identical inputs give identical outputs, statistics never
double-count, mode switching is explicit and validated, and clones are
fully independent (the worker-pool confinement model).
"""

import copy

import numpy as np
import pytest

from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import (
    available_schemes,
    build_scheme,
    odq_scheme,
    static_scheme,
)
from repro.models import LeNet5


@pytest.fixture
def lenet(rng):
    model = LeNet5(num_classes=10, in_channels=1, image_size=16, rng=rng)
    model.eval()
    return model


@pytest.fixture
def calib(rng):
    return rng.random((24, 1, 16, 16))


@pytest.fixture
def batch(rng):
    return rng.random((4, 1, 16, 16))


@pytest.fixture
def engine(lenet, calib):
    eng = QuantizedInferenceEngine(lenet, odq_scheme(0.3))
    eng.calibrate(calib)
    return eng


class TestRepeatedInference:
    def test_same_input_same_output(self, engine, batch):
        first = engine.infer(batch)
        second = engine.infer(batch)
        np.testing.assert_array_equal(first, second)

    def test_records_accumulate_exactly_once_per_call(self, engine, batch):
        engine.infer(batch)
        after_one = {
            n: (r.images, r.outputs_total, r.sensitive_total)
            for n, r in engine.records.items()
        }
        engine.infer(batch)
        after_two = {
            n: (r.images, r.outputs_total, r.sensitive_total)
            for n, r in engine.records.items()
        }
        # exactly linear growth — no double counting, no dropped counts
        for name in after_one:
            assert after_two[name] == tuple(2 * v for v in after_one[name]), name

    def test_reset_records_restores_fresh_statistics(self, engine, batch):
        engine.infer(batch)
        baseline = {
            n: (r.images, r.outputs_total, r.sensitive_total, dict(r.macs))
            for n, r in engine.records.items()
        }
        engine.reset_records()
        assert all(r.images == 0 for r in engine.records.values())
        engine.infer(batch)
        again = {
            n: (r.images, r.outputs_total, r.sensitive_total, dict(r.macs))
            for n, r in engine.records.items()
        }
        assert again == baseline

    def test_infer_requires_nchw(self, engine):
        with pytest.raises(ValueError):
            engine.infer(np.zeros((1, 16, 16)))


class TestModeSwitching:
    def test_calibrate_transitions_to_run(self, lenet, calib):
        eng = QuantizedInferenceEngine(lenet, static_scheme(8))
        assert eng.mode == "calibrate"
        assert not eng.calibrated
        eng.calibrate(calib)
        assert eng.mode == "run"
        assert eng.calibrated

    def test_infer_before_calibrate_raises(self, lenet, batch):
        eng = QuantizedInferenceEngine(lenet, static_scheme(8))
        with pytest.raises(RuntimeError, match="not calibrated"):
            eng.infer(batch)

    def test_invalid_mode_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.mode = "turbo"
        assert engine.mode == "run"

    def test_recalibration_round_trip(self, engine, calib, batch):
        """calibrate → run → calibrate → run keeps the engine serviceable."""
        out_before = engine.infer(batch)
        engine.calibrate(calib)  # recalibrate on the same data
        assert engine.mode == "run"
        out_after = engine.infer(batch)
        assert out_after.shape == out_before.shape
        assert np.isfinite(out_after).all()

    def test_manual_mode_flip_blocks_inference(self, engine, batch):
        engine.mode = "calibrate"
        with pytest.raises(RuntimeError):
            engine.infer(batch)
        engine.mode = "run"
        assert engine.infer(batch).shape[0] == batch.shape[0]


class TestCloning:
    def test_clone_preserves_calibration_and_outputs(self, engine, batch):
        clone = engine.clone()
        assert clone.calibrated and clone.mode == "run"
        np.testing.assert_array_equal(clone.infer(batch), engine.infer(batch))

    def test_clone_records_are_confined(self, engine, batch):
        clone = engine.clone()
        clone.reset_records()
        engine.reset_records()
        clone.infer(batch)
        assert all(r.images == 0 for r in engine.records.values())
        assert all(r.images == batch.shape[0] for r in clone.records.values())

    def test_clone_model_is_distinct(self, engine):
        clone = engine.clone()
        assert clone.model is not engine.model
        for (_, a), (_, b) in zip(engine.executors.items(), clone.executors.items()):
            assert a is not b

    def test_deepcopy_equals_clone(self, engine, batch):
        twin = copy.deepcopy(engine)
        np.testing.assert_array_equal(twin.infer(batch), engine.infer(batch))


class TestSchemeRegistry:
    def test_registry_contains_paper_schemes(self):
        names = available_schemes()
        for expected in ("fp32", "int8", "int16", "drq84", "drq42", "odq"):
            assert expected in names

    @pytest.mark.parametrize("name", ["fp32", "int8", "odq", "drq42", "DRQ-42", "ODQ"])
    def test_build_scheme_resolves_spellings(self, name):
        scheme = build_scheme(name, threshold=0.25)
        assert scheme.name

    def test_unknown_scheme_lists_registry(self):
        with pytest.raises(KeyError, match="available"):
            build_scheme("int128")

    def test_threshold_reaches_odq(self):
        scheme = build_scheme("odq", threshold=0.125)
        assert scheme.params["threshold"] == 0.125
