"""Scheme registry."""


from repro.core.drq import DRQConvExecutor
from repro.core.odq import ODQConvExecutor
from repro.core.schemes import (
    drq_scheme,
    fp32_scheme,
    odq_scheme,
    paper_schemes,
    static_scheme,
)
from repro.core.static_quant import FP32ConvExecutor, StaticQuantConvExecutor
from repro.nn import Conv2d


class TestFactories:
    def test_names(self):
        assert fp32_scheme().name == "fp32"
        assert static_scheme(8).name == "int8"
        assert drq_scheme(8, 4).name == "drq84"
        assert odq_scheme(0.5).name == "odq"

    def test_kinds(self):
        assert static_scheme(16).kind == "static"
        assert drq_scheme().kind == "drq"
        assert odq_scheme(0.1).kind == "odq"

    def test_executor_types(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        assert isinstance(fp32_scheme().make_executor(conv, "c"), FP32ConvExecutor)
        assert isinstance(static_scheme(8).make_executor(conv, "c"), StaticQuantConvExecutor)
        assert isinstance(drq_scheme().make_executor(conv, "c"), DRQConvExecutor)
        assert isinstance(odq_scheme(0.1).make_executor(conv, "c"), ODQConvExecutor)

    def test_params_propagate(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        ex = drq_scheme(4, 2, region=3, target_sensitive=0.3).make_executor(conv, "c")
        assert ex.hi_bits == 4 and ex.lo_bits == 2
        assert ex.region == 3 and ex.target_sensitive == 0.3
        ex2 = odq_scheme(0.25, total_bits=4, low_bits=2).make_executor(conv, "c")
        assert ex2.threshold == 0.25

    def test_each_factory_call_builds_fresh_executor(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        s = odq_scheme(0.1)
        assert s.make_executor(conv, "a") is not s.make_executor(conv, "b")


class TestPaperSchemes:
    def test_contains_fig18_set(self):
        schemes = paper_schemes(0.5)
        assert set(schemes) == {"INT16", "INT8", "DRQ 8-4", "DRQ 4-2", "ODQ 4-2"}
        assert schemes["ODQ 4-2"].params["threshold"] == 0.5
        assert schemes["DRQ 4-2"].params["hi_bits"] == 4
