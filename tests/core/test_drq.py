"""DRQ baseline: region masks, mixed precision, calibration, MAC split."""

import numpy as np
import pytest

from repro.core.drq import DRQConvExecutor, region_mean_magnitude, upsample_mask
from repro.nn import Conv2d


def make_executor(rng, **kwargs):
    conv = Conv2d(3, 4, 3, padding=1, rng=rng)
    return DRQConvExecutor(conv, "C1", **kwargs)


def calibrated(rng, x, **kwargs):
    ex = make_executor(rng, **kwargs)
    ex.calibrate(x)
    ex.freeze()
    return ex


class TestRegionMagnitude:
    def test_shape(self):
        x = np.ones((2, 3, 8, 8))
        out = region_mean_magnitude(x, 2)
        assert out.shape == (2, 1, 4, 4)

    def test_uneven_size_padded(self):
        x = np.ones((1, 1, 5, 5))
        out = region_mean_magnitude(x, 2)
        assert out.shape == (1, 1, 3, 3)
        np.testing.assert_allclose(out, 1.0)

    def test_values_are_means_of_abs(self):
        x = np.zeros((1, 2, 2, 2))
        x[0, 0] = [[1, -1], [1, -1]]  # channel 0: |x| mean 1; channel 1: 0
        out = region_mean_magnitude(x, 2)
        assert out[0, 0, 0, 0] == pytest.approx(0.5)

    def test_upsample_roundtrip_shape(self):
        m = np.array([[[[True, False], [False, True]]]])
        up = upsample_mask(m, 3, 6, 6)
        assert up.shape == (1, 1, 6, 6)
        assert up[0, 0, :3, :3].all()
        assert not up[0, 0, :3, 3:].any()

    def test_upsample_crops_to_input(self):
        m = np.ones((1, 1, 3, 3), dtype=bool)
        up = upsample_mask(m, 2, 5, 5)
        assert up.shape == (1, 1, 5, 5)


class TestCalibration:
    def test_threshold_hits_target_fraction(self, rng):
        x = rng.uniform(0, 1, (4, 3, 8, 8))
        ex = calibrated(rng, x, target_sensitive=0.3)
        mask = ex.input_mask(x)
        # Threshold chosen as the 70th percentile of calibration regions.
        assert 0.15 < mask.mean() < 0.45

    def test_explicit_threshold_respected(self, rng):
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = calibrated(rng, x, threshold=0.5)
        assert ex.threshold == 0.5

    def test_freeze_without_calibration_raises(self, rng):
        ex = make_executor(rng)
        with pytest.raises(RuntimeError):
            ex.freeze()

    def test_invalid_precision_pair(self, rng):
        with pytest.raises(ValueError):
            make_executor(rng, hi_bits=4, lo_bits=4)

    def test_invalid_target(self, rng):
        with pytest.raises(ValueError):
            make_executor(rng, target_sensitive=1.5)


class TestMixedPrecision:
    def test_all_sensitive_equals_hi_precision(self, rng):
        x = rng.uniform(0.5, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.0)  # everything sensitive
        out = ex.run(x)
        mask = np.ones((1, 1, 6, 6), dtype=bool)
        np.testing.assert_allclose(out, ex.mixed_precision_output(x, mask))

    def test_none_sensitive_equals_lo_precision(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=np.inf)
        out = ex.run(x)
        np.testing.assert_allclose(out, ex.low_precision_output(x), atol=1e-12)

    def test_hi_more_accurate_than_lo(self, rng):
        """8-4 DRQ must beat 4-2 DRQ in output fidelity."""
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ref = None
        errs = {}
        for hi, lo in [(8, 4), (4, 2)]:
            ex = calibrated(rng, x, hi_bits=hi, lo_bits=lo)
            if ref is None:
                ref = ex.reference_forward(x)
            errs[(hi, lo)] = np.abs(ex.run(x) - ref).mean()
        assert errs[(8, 4)] < errs[(4, 2)]

    def test_mixed_between_pure_lo_and_pure_hi(self, rng):
        x = rng.uniform(0, 1, (1, 3, 8, 8))
        ex = calibrated(rng, x, target_sensitive=0.5)
        ref = ex.reference_forward(x)
        err_mixed = np.abs(ex.run(x) - ref).mean()
        err_lo = np.abs(ex.low_precision_output(x) - ref).mean()
        assert err_mixed <= err_lo + 1e-12


class TestMACAccounting:
    def test_split_sums_to_total(self, rng):
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = calibrated(rng, x)
        ex.run(x)
        total = ex.record.macs["drq_hi"] + ex.record.macs["drq_lo"]
        expected = 2 * 8 * 8 * 4 * ex.info.macs_per_output
        assert total == expected

    def test_all_sensitive_only_padding_left_lo(self, rng):
        """With everything sensitive, only zero-padding MACs stay low
        (padding pixels are outside every sensitivity region)."""
        from repro.core.stats import input_fraction_per_output

        x = rng.uniform(0.5, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, threshold=0.0)
        ex.run(x)
        ones = np.ones((1, 1, 6, 6), dtype=bool)
        frac_real = input_fraction_per_output(ones, 3, 1, 1)
        real_macs = int(round(frac_real.sum() * 9)) * 3 * 4
        total = 1 * 6 * 6 * 4 * ex.info.macs_per_output
        assert ex.record.macs["drq_hi"] == real_macs
        assert ex.record.macs["drq_lo"] == total - real_macs

    def test_input_sensitivity_recorded(self, rng):
        x = rng.uniform(0, 1, (1, 3, 6, 6))
        ex = calibrated(rng, x, target_sensitive=0.5)
        ex.run(x)
        frac = ex.record.extra["input_sensitive_total"] / ex.record.extra["input_total"]
        assert 0.2 < frac < 0.8
        assert "last_input_mask" in ex.record.extra
