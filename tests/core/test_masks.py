"""Sensitivity masks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.masks import SensitivityMask, mask_from_magnitude


class TestSensitivityMask:
    def test_counts(self):
        m = SensitivityMask(np.array([[[[True, False], [True, True]]]]), 0.1)
        assert m.total == 4
        assert m.sensitive_count == 3
        assert m.sensitive_fraction == 0.75
        assert m.insensitive_fraction == 0.25

    def test_per_channel_counts(self):
        mask = np.zeros((2, 3, 2, 2), dtype=bool)
        mask[:, 1] = True  # channel 1 fully sensitive in both images
        m = SensitivityMask(mask, 0.0)
        np.testing.assert_array_equal(m.per_channel_counts(), [0, 8, 0])
        np.testing.assert_array_equal(m.per_image_channel_counts(), [[0, 4, 0], [0, 4, 0]])

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            SensitivityMask(np.zeros((2, 2)), 0.0)


class TestMaskFromMagnitude:
    def test_threshold_semantics_strict(self):
        vals = np.array([[[[-2.0, -0.5], [0.5, 2.0]]]])
        m = mask_from_magnitude(vals, 0.5)
        # Strictly greater: |±0.5| is NOT sensitive.
        np.testing.assert_array_equal(
            m.mask, [[[[True, False], [False, True]]]]
        )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            mask_from_magnitude(np.zeros((1, 1, 1, 1)), -1.0)

    def test_zero_threshold_marks_all_nonzero(self):
        vals = np.array([[[[0.0, 1e-9], [-1e-9, 0.0]]]])
        m = mask_from_magnitude(vals, 0.0)
        assert m.sensitive_count == 2

    @given(st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.0, max_value=5.0))
    def test_monotone_in_threshold(self, t1, t2):
        """Property: raising the threshold never adds sensitive outputs."""
        rng = np.random.default_rng(0)
        vals = rng.normal(size=(2, 3, 4, 4)) * 2
        lo, hi = sorted((t1, t2))
        assert (
            mask_from_magnitude(vals, hi).sensitive_count
            <= mask_from_magnitude(vals, lo).sensitive_count
        )

    def test_infinite_threshold_all_insensitive(self):
        vals = np.random.default_rng(0).normal(size=(1, 2, 3, 3)) * 100
        m = mask_from_magnitude(vals, np.inf)
        assert m.sensitive_count == 0
