"""ODQ-aware QAT: layer semantics, conversion, fine-tuning."""

import copy

import numpy as np
import pytest

from repro.core.odq import ODQConvExecutor, odq_weight_qparams
from repro.core.odq_qat import (
    ODQAwareConv2d,
    convert_from_odq_qat,
    convert_to_odq_qat,
    finetune_odq,
)
from repro.models import resnet20
from repro.nn import Conv2d, Tensor
from repro.quant.uniform import affine_qparams


class TestLayerSemantics:
    def test_forward_matches_executor(self, rng):
        """QAT layer and inference executor must compute the same output
        (training/deployment consistency)."""
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (2, 3, 6, 6))

        layer = ODQAwareConv2d.from_conv(conv, threshold=0.2)
        layer.eval()
        out_qat = layer(Tensor(x)).data

        ex = ODQConvExecutor(conv, "C", threshold=0.2)
        ex.calibrate(x)
        ex.freeze()
        out_exec = ex.run(x)
        np.testing.assert_allclose(out_qat, out_exec, atol=1e-9)

    def test_gradients_flow(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        layer = ODQAwareConv2d.from_conv(conv, threshold=0.2)
        x = Tensor(rng.uniform(0, 1, (2, 3, 6, 6)), requires_grad=True)
        out = layer(x)
        out.backward(np.ones(out.shape))
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert x.grad is not None
        assert np.isfinite(layer.weight.grad).all()

    def test_ste_weight_gradient_matches_plain_conv(self, rng):
        """STE rule: gradient equals that of an ordinary conv over the
        dequantized operands."""
        from repro.nn import functional as F
        from repro.quant.uniform import dequantize, quantize

        conv = Conv2d(2, 3, 3, padding=1, rng=rng)
        layer = ODQAwareConv2d.from_conv(conv, threshold=0.2)
        x_data = rng.uniform(0, 1, (1, 2, 5, 5))
        g = rng.normal(size=(1, 3, 5, 5))

        out = layer(Tensor(x_data))
        out.backward(g)
        got = layer.weight.grad.copy()

        qp_a = affine_qparams(x_data.min(), x_data.max(), 4)
        qp_w = odq_weight_qparams(conv.weight.data, 4, 97.0)
        x_deq = dequantize(quantize(x_data, qp_a), qp_a)
        w = Tensor(dequantize(quantize(conv.weight.data, qp_w), qp_w), requires_grad=True)
        ref_out = F.conv2d(Tensor(x_deq), w, None, 1, 1)
        ref_out.backward(g)
        np.testing.assert_allclose(got, w.grad, atol=1e-9)

    def test_sensitive_fraction_reported(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        layer = ODQAwareConv2d.from_conv(conv, threshold=0.0)
        layer(Tensor(rng.uniform(0.2, 1, (1, 3, 5, 5))))
        assert layer.last_sensitive_fraction > 0.5


class TestConversion:
    def test_roundtrip_preserves_weights(self, rng):
        model = resnet20(scale=0.25, rng=rng)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        convert_to_odq_qat(model, 0.2)
        assert len(model.modules_of_type(ODQAwareConv2d)) == 19
        convert_from_odq_qat(model)
        assert len(model.modules_of_type(ODQAwareConv2d)) == 0
        after = model.state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_double_convert_idempotent(self, rng):
        model = resnet20(scale=0.25, rng=rng)
        convert_to_odq_qat(model, 0.2)
        n = len(model.modules_of_type(ODQAwareConv2d))
        convert_to_odq_qat(model, 0.2)
        assert len(model.modules_of_type(ODQAwareConv2d)) == n
        convert_from_odq_qat(model)

    def test_to_conv_shares_parameters(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        layer = ODQAwareConv2d.from_conv(conv, threshold=0.1)
        back = layer.to_conv()
        assert back.weight is conv.weight
        assert back.bias is conv.bias


class TestFinetune:
    def test_restores_plain_convs_and_improves_odq(self, trained_resnet, tiny_dataset):
        """Fine-tuning is the paper's retraining step: ODQ accuracy on the
        retrained model must beat naive post-training ODQ."""
        from repro.core.pipeline import run_scheme
        from repro.core.schemes import odq_scheme

        model, _ = trained_resnet
        calib = tiny_dataset.x_train[:32]
        before, _ = run_scheme(
            model, odq_scheme(0.3), calib, tiny_dataset.x_test, tiny_dataset.y_test
        )
        twin = copy.deepcopy(model)
        finetune_odq(
            twin, 0.3,
            tiny_dataset.x_train, tiny_dataset.y_train,
            tiny_dataset.x_test, tiny_dataset.y_test,
            epochs=3, lr=0.01, rng=np.random.default_rng(0),
        )
        assert len(twin.modules_of_type(ODQAwareConv2d)) == 0
        twin.eval()
        after, _ = run_scheme(
            twin, odq_scheme(0.3), calib, tiny_dataset.x_test, tiny_dataset.y_test
        )
        assert after > before

    def test_keep_best_restores_best_epoch(self, trained_resnet, tiny_dataset):
        model, _ = trained_resnet
        twin = copy.deepcopy(model)
        history = finetune_odq(
            twin, 0.3,
            tiny_dataset.x_train, tiny_dataset.y_train,
            tiny_dataset.x_test, tiny_dataset.y_test,
            epochs=2, lr=0.01, keep_best=True,
            rng=np.random.default_rng(0),
        )
        assert len(history.test_acc) == 2


class TestWeightQParams:
    def test_percentile_tightens_scale(self, rng):
        w = rng.normal(size=1000)
        w[0] = 50.0  # outlier
        full = odq_weight_qparams(w, 4, 100.0)
        clipped = odq_weight_qparams(w, 4, 97.0)
        assert clipped.scale < full.scale

    def test_invalid_percentile(self, rng):
        with pytest.raises(ValueError):
            odq_weight_qparams(rng.normal(size=10), 4, 30.0)

    def test_zero_weights_safe(self):
        qp = odq_weight_qparams(np.zeros(10), 4, 97.0)
        assert qp.scale > 0
