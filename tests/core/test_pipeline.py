"""Quantized inference engine: install/restore, calibration, evaluation."""

import numpy as np
import pytest

from repro.core.pipeline import InstrumentedConv, QuantizedInferenceEngine, run_scheme
from repro.core.schemes import drq_scheme, fp32_scheme, odq_scheme, static_scheme
from repro.models import resnet20
from repro.nn import Linear, Sequential, Tensor


@pytest.fixture
def model(rng):
    return resnet20(scale=0.25, rng=rng)


class TestInstallRestore:
    def test_all_convs_instrumented(self, model):
        engine = QuantizedInferenceEngine(model, fp32_scheme())
        n_instr = len([m for _, m in model.named_modules() if isinstance(m, InstrumentedConv)])
        assert n_instr == 19
        assert len(engine.executors) == 19
        engine.restore()

    def test_restore_reinstates_originals(self, model, rng):
        x = rng.normal(size=(1, 3, 16, 16))
        model.eval()
        before = model(Tensor(x)).data
        engine = QuantizedInferenceEngine(model, fp32_scheme())
        engine.restore()
        assert not any(isinstance(m, InstrumentedConv) for _, m in model.named_modules())
        np.testing.assert_array_equal(model(Tensor(x)).data, before)

    def test_skip_first_conv(self, model):
        engine = QuantizedInferenceEngine(model, fp32_scheme(), skip_first_conv=True)
        assert len(engine.executors) == 18
        engine.restore()

    def test_layer_names_ordered(self, model):
        engine = QuantizedInferenceEngine(model, fp32_scheme())
        names = list(engine.executors)
        assert names[0].startswith("C1:")
        assert names[-1].startswith("C19:")
        engine.restore()

    def test_no_convs_rejected(self):
        model = Sequential(Linear(4, 2))
        with pytest.raises(ValueError):
            QuantizedInferenceEngine(model, fp32_scheme())


class TestCalibrationAndRun:
    def test_forward_before_calibrate_raises(self, model, rng):
        engine = QuantizedInferenceEngine(model, static_scheme(8))
        with pytest.raises(RuntimeError):
            engine.forward(rng.normal(size=(1, 3, 16, 16)))
        engine.restore()

    def test_fp32_engine_matches_plain_model(self, model, rng):
        x = rng.normal(size=(2, 3, 16, 16))
        model.eval()
        ref = model(Tensor(x)).data
        engine = QuantizedInferenceEngine(model, fp32_scheme())
        engine.calibrate(x)
        out = engine.forward(x)
        engine.restore()
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_evaluate_returns_fraction(self, model, tiny_dataset):
        engine = QuantizedInferenceEngine(model, static_scheme(16))
        engine.calibrate(tiny_dataset.x_train[:16])
        acc = engine.evaluate(tiny_dataset.x_test[:32], tiny_dataset.y_test[:32])
        engine.restore()
        assert 0.0 <= acc <= 1.0

    def test_records_populated_for_odq(self, model, rng):
        x = rng.uniform(0, 1, (2, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, odq_scheme(0.3))
        engine.calibrate(x)
        engine.forward(x)
        recs = engine.records
        assert len(recs) == 19
        assert all(r.outputs_total > 0 for r in recs.values())
        assert engine.total_macs()["pred_int2"] > 0
        assert 0.0 <= engine.mean_sensitive_fraction() <= 1.0
        engine.restore()

    def test_reset_records(self, model, rng):
        x = rng.uniform(0, 1, (1, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, odq_scheme(0.3))
        engine.calibrate(x)
        engine.forward(x)
        engine.reset_records()
        assert all(r.outputs_total == 0 for r in engine.records.values())
        engine.restore()

    def test_capture_inputs(self, model, rng):
        x = rng.uniform(0, 1, (1, 3, 16, 16))
        engine = QuantizedInferenceEngine(model, drq_scheme())
        engine.capture_inputs = True
        engine.calibrate(x)
        engine.forward(x)
        for rec in engine.records.values():
            assert rec.extra["last_input"].ndim == 4
        engine.restore()


class TestRunScheme:
    def test_restores_even_on_success(self, model, tiny_dataset):
        acc, records = run_scheme(
            model, static_scheme(8),
            tiny_dataset.x_train[:16], tiny_dataset.x_test[:16], tiny_dataset.y_test[:16],
        )
        assert not any(isinstance(m, InstrumentedConv) for _, m in model.named_modules())
        assert len(records) == 19
        assert 0.0 <= acc <= 1.0

    def test_restores_on_failure(self, model):
        bad_x = np.zeros((0, 3, 16, 16))  # empty calibration -> observer error
        with pytest.raises(Exception):
            run_scheme(model, static_scheme(8), bad_x, bad_x, np.zeros(0))
        assert not any(isinstance(m, InstrumentedConv) for _, m in model.named_modules())
