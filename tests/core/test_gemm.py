"""repro.core.gemm: bit-exactness, dispatch policy, pool lifecycle.

The contract under test is brutal on purpose: ``pgemm(a, b)`` must be
*bit-identical* to ``a @ b`` (``np.array_equal``, not ``allclose``) for
every operand the conv call sites produce, because the ODQ executors'
sensitivity masks are thresholded on these outputs and a 1-ulp drift
flips mask bits.

Exactness holds *at or above the verified block floor* — that is the
whole point of :attr:`GemmTuning.min_block_mnk` (BLAS small-matrix
kernels round differently, so sub-floor blocks are never dispatched).
The exactness tests therefore size their operands from the live
auto-tuned floor; only the dispatch-accounting tests force tiny blocks,
and those assert stats, not values.
"""

import os

import numpy as np
import pytest

from repro.core import gemm


@pytest.fixture(autouse=True)
def _isolated_gemm_state():
    """Each test starts from unconfigured module state and leaves none."""
    gemm.reset()
    yield
    gemm.reset()


def _verified_parallel(threads: int = 4) -> gemm.GemmTuning:
    """Auto-tune (verifying the block floor), then drop the FLOP
    crossover so moderately-sized test GEMMs take the pooled path."""
    tune = gemm.tuning()
    if not tune.verified:
        pytest.skip("BLAS failed block-exactness verification on this host")
    gemm.configure(threads=threads, min_flops=1.0)
    return gemm.tuning()


def _rows_for(tune: gemm.GemmTuning, k: int, n: int, blocks: int = 3,
              extra: int = 7) -> int:
    """An ``m`` giving ``blocks`` full floor-sized row blocks plus a
    ragged remainder (exercises the uneven divmod bounds)."""
    per_block = max(1, -(-tune.min_block_mnk // (k * n)))
    return blocks * per_block + extra


def _assert_pooled(at_least: int = 1) -> None:
    assert gemm.stats().pooled_calls >= at_least, (
        "test expected the pooled path but pgemm went direct "
        f"(stats={gemm.stats().as_dict()})"
    )


class TestBitExactness:
    """pgemm == a @ b, exactly, via the pooled path."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("kn", [(1152, 256), (576, 64), (800, 16)])
    def test_matches_serial_product(self, dtype, kn):
        k, n = kn
        tune = _verified_parallel()
        m = _rows_for(tune, k, n)
        rng = np.random.default_rng(42)
        a = rng.standard_normal((m, k)).astype(dtype)
        b = rng.standard_normal((k, n)).astype(dtype)
        expected = a @ b
        assert np.array_equal(gemm.pgemm(a, b), expected)
        _assert_pooled()

    def test_transposed_operands(self):
        """The QAT backward multiplies ``cols.T @ gmat`` and
        ``gmat @ wmat.T`` — transposed-layout views, not copies."""
        tune = _verified_parallel()
        k, n = 576, 64
        m = _rows_for(tune, k, n)
        rng = np.random.default_rng(7)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        expected = a @ b
        assert np.array_equal(gemm.pgemm(np.asfortranarray(a), b), expected)
        assert np.array_equal(gemm.pgemm(a, np.asfortranarray(b)), expected)
        _assert_pooled(2)

    def test_non_contiguous_slices(self):
        tune = _verified_parallel()
        k, n = 576, 64
        m = _rows_for(tune, k, n, blocks=2, extra=3)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((2 * m, 2 * k))[::2, ::2]   # strided views
        b = rng.standard_normal((2 * k, 3 * n))[::2, ::3]
        assert a.shape == (m, k) and b.shape == (k, n)
        assert np.array_equal(gemm.pgemm(a, b), a @ b)
        _assert_pooled()

    def test_out_parameter_contiguous(self):
        tune = _verified_parallel()
        k, n = 576, 64
        m = _rows_for(tune, k, n, blocks=2, extra=1)
        rng = np.random.default_rng(9)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        out = np.empty((m, n))
        ret = gemm.pgemm(a, b, out=out)
        assert ret is out
        assert np.array_equal(out, a @ b)
        _assert_pooled()

    def test_out_parameter_wrong_dtype_copies(self):
        tune = _verified_parallel()
        k, n = 576, 64
        m = _rows_for(tune, k, n, blocks=2, extra=1)
        rng = np.random.default_rng(9)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        out = np.empty((m, n), dtype=np.float64)  # not the result dtype
        ret = gemm.pgemm(a, b, out=out)
        assert ret is out
        assert np.array_equal(out.astype(np.float32), a.astype(np.float32) @ b)

    def test_verified_floor_blocks_match_monolithic(self):
        """At the auto-tuned (verified) floor, row-slice GEMMs reproduce
        the full GEMM bit-for-bit — the property the tuner asserts."""
        tune = gemm.tuning()
        if not tune.verified:
            pytest.skip("BLAS failed exactness verification on this host")
        rng = np.random.default_rng(11)
        k, n = 1152, 256
        bh = max(1, -(-tune.min_block_mnk // (k * n)))
        m = 2 * bh + 5
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        full = a @ b
        assert np.array_equal(a[:bh] @ b, full[:bh])
        assert np.array_equal(a[bh:] @ b, full[bh:])


class TestDispatchPolicy:
    def test_single_thread_is_passthrough(self):
        gemm.configure(threads=1)
        a = np.random.default_rng(0).standard_normal((512, 512))
        b = np.random.default_rng(1).standard_normal((512, 512))
        assert np.array_equal(gemm.pgemm(a, b), a @ b)
        s = gemm.stats()
        assert s.pooled_calls == 0 and s.direct_calls == s.calls == 1

    def test_small_gemm_stays_direct(self):
        gemm.configure(threads=4, min_flops=1e12)  # nothing qualifies
        a = np.ones((64, 64))
        assert np.array_equal(gemm.pgemm(a, a), a @ a)
        assert gemm.stats().pooled_calls == 0

    def test_large_gemm_is_pooled(self):
        # Stats only — forcing min_block_mnk=1 may change BLAS kernels.
        gemm.configure(threads=4, min_flops=1.0, min_block_mnk=1)
        rng = np.random.default_rng(5)
        a = rng.standard_normal((256, 64))
        b = rng.standard_normal((64, 32))
        gemm.pgemm(a, b)
        s = gemm.stats()
        assert s.pooled_calls == 1
        assert s.pooled_rows == 256
        assert 2 <= s.pooled_blocks <= 4

    def test_block_floor_limits_split(self):
        """nblocks = mnk // min_block_mnk: a GEMM worth just under two
        floors must not split at all."""
        gemm.configure(threads=8, min_flops=1.0, min_block_mnk=64 * 64 * 33)
        a = np.ones((64, 64))
        gemm.pgemm(a, a)  # mnk = 64^3 < 2 * floor
        assert gemm.stats().pooled_calls == 0

    @pytest.mark.parametrize(
        "a,b",
        [
            (np.ones((4, 4), dtype=np.int64), np.ones((4, 4), dtype=np.int64)),
            (np.ones((4, 4), dtype=np.float32), np.ones((4, 4))),  # mixed
            (np.ones((2, 3, 4)), np.ones((4, 5))),                 # 3-D
        ],
    )
    def test_unsupported_operands_fall_back(self, a, b):
        gemm.configure(threads=4, min_flops=1.0, min_block_mnk=1)
        expected = a @ b
        assert np.array_equal(gemm.pgemm(a, b), expected)
        assert gemm.stats().pooled_calls == 0

    def test_shape_mismatch_raises_like_matmul(self):
        gemm.configure(threads=4, min_flops=1.0, min_block_mnk=1)
        with pytest.raises(ValueError):
            gemm.pgemm(np.ones((4, 5)), np.ones((6, 4)))


class TestConfiguration:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_THREADS", "3")
        gemm.reset()  # drop any configure() from previous asserts
        assert gemm.default_threads() == 3
        assert gemm.gemm_threads() == 3

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_THREADS", "lots")
        with pytest.raises(ValueError):
            gemm.default_threads()

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_THREADS", "2")
        gemm.configure(threads=5)
        assert gemm.gemm_threads() == 5

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gemm.configure(threads=0)

    def test_tuning_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEMM_MIN_FLOPS", "123.0")
        monkeypatch.setenv("REPRO_GEMM_MIN_BLOCK_MNK", "77")
        gemm.reset()
        t = gemm.tuning()
        assert t.min_flops == 123.0
        assert t.min_block_mnk == 77

    def test_default_threads_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_GEMM_THREADS", raising=False)
        assert 1 <= gemm.default_threads() <= gemm.DEFAULT_MAX_THREADS


class TestPoolLifecycle:
    def test_restart_after_shutdown(self):
        tune = _verified_parallel(threads=2)
        k, n = 576, 64
        m = _rows_for(tune, k, n, blocks=2, extra=1)
        rng = np.random.default_rng(13)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        expected = a @ b
        assert np.array_equal(gemm.pgemm(a, b), expected)
        gemm.shutdown()
        # Pool restarts lazily on the next call, result still exact.
        assert np.array_equal(gemm.pgemm(a, b), expected)
        assert gemm.stats().pooled_calls == 2

    def test_fork_detection_rebuilds_pool(self):
        """After fork the parent's worker threads don't exist; the child
        must rebuild the pool instead of queueing to dead workers."""
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        tune = _verified_parallel(threads=2)
        k, n = 576, 64
        m = _rows_for(tune, k, n, blocks=2, extra=1)
        rng = np.random.default_rng(17)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        expected = a @ b
        gemm.pgemm(a, b)  # pool running pre-fork
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            try:
                ok = (
                    np.array_equal(gemm.pgemm(a, b), expected)
                    and gemm.stats().pooled_calls >= 1
                )
                os.write(w, b"1" if ok else b"0")
            finally:
                os._exit(0)
        os.close(w)
        try:
            flag = os.read(r, 1)
        finally:
            os.close(r)
            os.waitpid(pid, 0)
        assert flag == b"1"

    def test_stats_reset(self):
        gemm.configure(threads=2, min_flops=1.0, min_block_mnk=1)
        a = np.random.default_rng(1).standard_normal((64, 64))
        gemm.pgemm(a, a)
        assert gemm.stats().calls == 1
        gemm.reset_stats()
        assert gemm.stats().calls == 0
