"""Sparse result generation: bit-exactness, dispatch, and the column cache.

The sparse executor path gathers only sensitive rows of the column matrix
and computes the three remaining Eq.-3 cross terms in one GEMM against the
packed ``wmat_rest`` operand.  These tests pin the PR's contract:

* dense and sparse outputs are **bit-exact** (``assert_array_equal``, no
  tolerance) across stride/padding/bias/threshold/threshold-mode space;
* the MAC census and sensitivity accounting are *identical* across paths
  (the hardware cost model is mask-based, not path-based);
* ``auto`` dispatches on the sensitive-row density crossover;
* the :mod:`repro.core.colcache` primitives and the ``cols`` overloads of
  the base conv helpers are exact.
"""

import numpy as np
import pytest

from repro.core.base import int_conv2d
from repro.core.colcache import ColumnCache, pack_conv_weights
from repro.core.odq import (
    EXEC_PATHS,
    ODQConvExecutor,
    SPARSE_ROW_CROSSOVER,
    odq_mixed_conv,
    odq_weight_qparams,
)
from repro.nn import Conv2d
from repro.quant.uniform import affine_qparams, quantize
from repro.utils.im2col import im2col, im2col_rows, pad_nchw


def _pair(rng, threshold, *, in_c=3, out_c=4, k=3, stride=1, padding=1,
          bias=True, x_shape=(2, 3, 7, 7), **kwargs):
    """Two executors on the *same* conv, calibrated identically:
    one forced dense, one forced sparse."""
    conv = Conv2d(in_c, out_c, k, stride=stride, padding=padding,
                  bias=bias, rng=rng)
    x = rng.uniform(0, 1, x_shape)
    executors = []
    for path in ("dense", "sparse"):
        ex = ODQConvExecutor(conv, "C1", threshold=threshold,
                             exec_path=path, **kwargs)
        ex.calibrate(x)
        ex.freeze()
        executors.append(ex)
    return executors[0], executors[1], x


class TestBitExactness:
    """Sparse output == dense output, to the last bit."""

    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("bias", [True, False])
    def test_geometry_grid(self, rng, stride, padding, bias):
        dense, sparse, x = _pair(rng, 0.3, stride=stride, padding=padding,
                                 bias=bias)
        np.testing.assert_array_equal(dense.run(x), sparse.run(x))

    @pytest.mark.parametrize("threshold", [0.0, 0.15, 0.6, 1e9, np.inf])
    def test_threshold_extremes(self, rng, threshold):
        """theta=0 (everything sensitive) through theta=inf (nothing)."""
        dense, sparse, x = _pair(rng, threshold)
        np.testing.assert_array_equal(dense.run(x), sparse.run(x))

    @pytest.mark.parametrize("mode", ["absolute", "scaled"])
    def test_threshold_modes(self, rng, mode):
        dense, sparse, x = _pair(rng, 0.4, threshold_mode=mode)
        np.testing.assert_array_equal(dense.run(x), sparse.run(x))

    def test_no_compensation(self, rng):
        dense, sparse, x = _pair(rng, 0.3, compensate_low_bits=False)
        np.testing.assert_array_equal(dense.run(x), sparse.run(x))

    def test_auto_matches_both(self, rng):
        """Whatever auto picks, the output is the same bit pattern."""
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (2, 3, 7, 7))
        outs = []
        for path in EXEC_PATHS:
            ex = ODQConvExecutor(conv, "C1", threshold=0.3, exec_path=path)
            ex.calibrate(x)
            ex.freeze()
            outs.append(ex.run(x))
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_infinite_threshold_sparse_is_pure_predictor(self, rng):
        _, sparse, x = _pair(rng, np.inf)
        np.testing.assert_allclose(sparse.run(x), sparse.predict_partial(x))
        assert sparse.record.sensitive_total == 0


class TestAccountingParity:
    """The hardware cost model must not depend on the software path."""

    @pytest.mark.parametrize("threshold", [0.0, 0.3, np.inf])
    def test_macs_and_sensitivity_identical(self, rng, threshold):
        dense, sparse, x = _pair(rng, threshold)
        dense.run(x)
        sparse.run(x)
        assert dense.record.macs == sparse.record.macs
        assert dense.record.sensitive_total == sparse.record.sensitive_total
        assert dense.record.outputs_total == sparse.record.outputs_total
        np.testing.assert_array_equal(dense.record.last_mask.mask,
                                      sparse.record.last_mask.mask)

    def test_exec_path_census(self, rng):
        dense, sparse, x = _pair(rng, 0.3)
        dense.run(x)
        sparse.run(x)
        assert dense.record.extra["exec_path_calls"] == {"dense": 1}
        assert sparse.record.extra["exec_path_calls"] == {"sparse": 1}
        # Dense computes every row; sparse only the flagged ones.
        assert dense.record.extra["exec_rows_computed"] == \
            dense.record.extra["exec_rows_total"]
        assert sparse.record.extra["exec_rows_computed"] <= \
            sparse.record.extra["exec_rows_total"]
        # Both paths record the same dense-equivalent FLOP budget.
        assert dense.record.extra["exec_flops_full_dense"] == \
            sparse.record.extra["exec_flops_full_dense"]


class TestAutoDispatch:
    def test_low_density_picks_sparse(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = ODQConvExecutor(conv, "C1", threshold=1e9, exec_path="auto")
        ex.calibrate(x)
        ex.freeze()
        ex.run(x)
        assert ex.record.extra["exec_path_calls"] == {"sparse": 1}

    def test_high_density_picks_dense(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0.1, 1, (2, 3, 8, 8))
        ex = ODQConvExecutor(conv, "C1", threshold=0.0, exec_path="auto")
        ex.calibrate(x)
        ex.freeze()
        ex.run(x)
        assert ex.record.extra["exec_path_calls"] == {"dense": 1}

    def test_crossover_knob(self, rng):
        """sparse_crossover=1.0 forces sparse even at full density."""
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0.1, 1, (1, 3, 6, 6))
        ex = ODQConvExecutor(conv, "C1", threshold=0.0, exec_path="auto",
                             sparse_crossover=1.0)
        ex.calibrate(x)
        ex.freeze()
        ex.run(x)
        assert ex.record.extra["exec_path_calls"] == {"sparse": 1}
        assert 0.0 < SPARSE_ROW_CROSSOVER < 1.0  # below pure-FLOP break-even

    def test_validation(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            ODQConvExecutor(conv, "C1", threshold=0.3, exec_path="gpu")
        with pytest.raises(ValueError):
            ODQConvExecutor(conv, "C1", threshold=0.3, sparse_crossover=1.5)
        with pytest.raises(ValueError):
            odq_mixed_conv(
                np.zeros((1, 3, 4, 4)), np.zeros((2, 3, 3, 3)), None, 1, 1,
                0.3, affine_qparams(0.0, 1.0, 4),
                affine_qparams(-1.0, 1.0, 4), exec_path="nope",
            )


class TestMixedConvFunction:
    def test_sparse_equals_dense(self, rng):
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3)) * 0.3
        b = rng.normal(size=4)
        qp_a = affine_qparams(float(x.min()), float(x.max()), 4)
        qp_w = odq_weight_qparams(w, 4)
        kwargs = dict(stride=1, padding=1, threshold=0.3, qp_a=qp_a, qp_w=qp_w)
        d = odq_mixed_conv(x, w, b, **kwargs, exec_path="dense")
        s = odq_mixed_conv(x, w, b, **kwargs, exec_path="sparse")
        np.testing.assert_array_equal(d["out"], s["out"])
        np.testing.assert_array_equal(d["mask"].mask, s["mask"].mask)
        assert d["exec_path"] == "dense" and d["full"] is not None
        assert s["exec_path"] == "sparse" and s["full"] is None

    def test_with_cache_returns_cache(self, rng):
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3)) * 0.3
        qp_a = affine_qparams(0.0, 1.0, 4)
        qp_w = odq_weight_qparams(w, 4)
        res = odq_mixed_conv(x, w, None, 1, 1, 0.2, qp_a, qp_w,
                             with_cache=True)
        cache, packed = res["cache"], res["packed"]
        assert cache.rows == 1 * 5 * 5
        # The cached columns reproduce the full result exactly.
        acc = cache.cols @ packed.wmat_full
        full = qp_a.scale * qp_w.scale * (acc - qp_a.zero_point * packed.w_sum)
        np.testing.assert_array_equal(cache.to_nchw(full), res["full"])


class TestColumnCache:
    """The shared quantize->pad->im2col primitive."""

    def _cache(self, rng, padding=1, compensate=True):
        x = rng.uniform(0, 1, (2, 3, 6, 6))
        qp_a = affine_qparams(float(x.min()), float(x.max()), 4)
        return x, qp_a, ColumnCache(x, qp_a, 3, 1, padding, 2,
                                    compensate_low_bits=compensate)

    def test_cols_match_reference_im2col(self, rng):
        x, qp_a, cache = self._cache(rng)
        q = pad_nchw(quantize(x, qp_a), 1, value=qp_a.zero_point)
        np.testing.assert_array_equal(
            cache.cols, im2col(q.astype(np.float64), 3, 1, 0))

    def test_merge_identity(self, rng):
        """cols == (cols_high << n) + cols_low, exactly."""
        _, _, cache = self._cache(rng)
        np.testing.assert_array_equal(
            cache.cols, cache.cols_high * 4.0 + cache.cols_low)

    def test_rest_rows_equals_dense_slice(self, rng):
        seed = rng.integers(1 << 31)
        rows = np.array([0, 3, 17, 40, 71])
        # Fresh cache: gathered without dense materialisation ...
        _, _, cache_a = self._cache(np.random.default_rng(seed))
        gathered = cache_a.rest_rows(rows)
        assert cache_a._cols is None  # never built the dense matrix
        # ... equals the dense slice of an identically-built cache.
        _, _, cache_b = self._cache(np.random.default_rng(seed))
        np.testing.assert_array_equal(gathered, cache_b.rest_cols()[rows])
        # And the post-dense slicing shortcut agrees too.
        np.testing.assert_array_equal(gathered, cache_b.rest_rows(rows))

    def test_e_low_on_unpadded_input(self, rng):
        x, qp_a, cache = self._cache(rng)
        from repro.quant.bitsplit import split_planes
        expected = float(split_planes(quantize(x, qp_a), qp_a, 2).low.mean())
        assert cache.e_low == expected

    def test_no_compensation_skips_e_low(self, rng):
        _, _, cache = self._cache(rng, compensate=False)
        assert cache.e_low == 0.0


class TestPrimitives:
    def test_im2col_rows_matches_dense(self, rng):
        xp = rng.normal(size=(2, 3, 8, 8))
        dense = im2col(xp, 3, 2, 0)
        rows = np.array([0, 1, 5, dense.shape[0] - 1])
        np.testing.assert_array_equal(im2col_rows(xp, 3, 2, rows), dense[rows])

    def test_int_conv2d_cols_overload(self, rng):
        q = rng.integers(0, 16, size=(2, 3, 6, 6)).astype(np.int64)
        qw = rng.integers(-8, 8, size=(4, 3, 3, 3)).astype(np.int64)
        ref = int_conv2d(q, qw, 1, 1, pad_value=5)
        qp = pad_nchw(q.astype(np.float64), 1, value=5.0)
        cols = im2col(qp, 3, 1, 0)
        out = int_conv2d(q, qw, 1, 1, cols=cols)
        assert out.dtype == np.float64  # no rint round-trip
        np.testing.assert_array_equal(out, ref.astype(np.float64))

    def test_packed_weights_cross_term_algebra(self, rng):
        """wmat_rest reproduces acc - (hh << 2n) for arbitrary columns."""
        w = rng.normal(size=(4, 3, 3, 3)) * 0.3
        qp_w = odq_weight_qparams(w, 4)
        packed = pack_conv_weights(quantize(w, qp_w), qp_w, 2)
        cols = rng.integers(0, 16, size=(10, 27)).astype(np.float64)
        cols_high = np.floor(cols / 4.0)
        cols_low = cols - cols_high * 4.0
        acc = cols @ packed.wmat_full
        hh = cols_high @ packed.wmat_high
        rest = np.hstack([cols, cols_low]) @ packed.wmat_rest
        np.testing.assert_array_equal(hh * 16.0 + rest, acc)


class TestProfileIntegration:
    def test_report_renders_path_and_speedup(self, rng):
        from repro.obs.profile import ProfileReport

        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        ex = ODQConvExecutor(conv, "C1", threshold=0.5, exec_path="sparse")
        ex.calibrate(x)
        ex.freeze()
        ex.run(x)
        report = ProfileReport.from_spans([], {"C1": ex.record})
        layer = report.layers["C1"]
        assert layer.path_calls == {"sparse": 1}
        assert layer.exec_path_summary == "sparse"
        assert layer.rows_computed <= layer.rows
        rendered = report.render()
        assert "result generation" in rendered
        assert "sparse" in rendered
