"""DRQ internals beyond the executor surface: regions, precisions, scheme wiring."""

import numpy as np

from repro.core.drq import DRQConvExecutor, region_mean_magnitude
from repro.core.schemes import drq_scheme
from repro.nn import Conv2d


class TestRegionGranularity:
    def test_region_size_controls_mask_blockiness(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (1, 3, 8, 8))
        masks = {}
        for region in (1, 4):
            ex = DRQConvExecutor(conv, "C", region=region, target_sensitive=0.5)
            ex.calibrate(x)
            ex.freeze()
            masks[region] = ex.input_mask(x)
        # Coarser regions produce fewer distinct 1-pixel transitions.
        def transitions(m):
            return int(np.abs(np.diff(m[0, 0].astype(int), axis=0)).sum()
                       + np.abs(np.diff(m[0, 0].astype(int), axis=1)).sum())

        assert transitions(masks[4]) <= transitions(masks[1])

    def test_region_one_is_per_pixel(self, rng):
        x = rng.uniform(0, 1, (1, 2, 4, 4))
        mags = region_mean_magnitude(x, 1)
        np.testing.assert_allclose(mags[0, 0], np.abs(x[0]).mean(axis=0))


class TestThresholdDirection:
    def test_higher_threshold_fewer_sensitive_inputs(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0, 1, (2, 3, 8, 8))
        fractions = []
        for theta in (0.1, 0.4, 0.8):
            ex = DRQConvExecutor(conv, "C", threshold=theta)
            ex.calibrate(x)
            ex.freeze()
            fractions.append(ex.input_mask(x).mean())
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_target_sensitive_zero_and_one(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = rng.uniform(0.1, 1, (2, 3, 8, 8))
        for target, lo, hi in [(0.0, 0.0, 0.15), (1.0, 0.85, 1.0)]:
            ex = DRQConvExecutor(conv, "C", target_sensitive=target)
            ex.calibrate(x)
            ex.freeze()
            frac = ex.input_mask(x).mean()
            assert lo <= frac <= hi + 1e-9


class TestSchemeWiring:
    def test_drq42_uses_2bit_low(self, rng):
        ex = drq_scheme(4, 2).make_executor(Conv2d(2, 2, 3, rng=rng), "c")
        assert (ex.hi_bits, ex.lo_bits) == (4, 2)

    def test_fixed_threshold_skips_quantile_collection(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        ex = DRQConvExecutor(conv, "C", threshold=0.5)
        x = rng.uniform(0, 1, (1, 2, 4, 4))
        ex.calibrate(x)
        assert ex._region_samples == []
        ex.freeze()
        assert ex.threshold == 0.5
