"""Weight initialisation statistics."""

import numpy as np
import pytest

from repro.nn.init import _fan_in_out, kaiming_normal, xavier_uniform


class TestFans:
    def test_dense(self):
        assert _fan_in_out((10, 20)) == (20, 10)

    def test_conv(self):
        # (out, in, k, k): fan_in = in*k*k, fan_out = out*k*k
        assert _fan_in_out((8, 4, 3, 3)) == (36, 72)

    def test_unsupported(self):
        with pytest.raises(ValueError):
            _fan_in_out((3,))


class TestKaiming:
    def test_std_matches_he_rule(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((256, 128, 3, 3), rng)
        expected = np.sqrt(2.0 / (128 * 9))
        assert abs(w.std() - expected) / expected < 0.05

    def test_zero_mean(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((64, 64), rng)
        assert abs(w.mean()) < 0.01

    def test_deterministic_per_seed(self):
        a = kaiming_normal((4, 4), np.random.default_rng(3))
        b = kaiming_normal((4, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 100), rng)
        a = np.sqrt(6.0 / 200)
        assert w.min() >= -a and w.max() <= a

    def test_variance_matches_glorot(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((512, 512), rng)
        a = np.sqrt(6.0 / 1024)
        expected_var = a**2 / 3
        assert abs(w.var() - expected_var) / expected_var < 0.05
