"""Module system: layers, traversal, state dicts, train/eval semantics."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tensor,
)
from repro.nn.layers import Identity, swap_modules


def small_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        BatchNorm2d(4),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(4, 2, rng=rng),
    )


class TestTraversal:
    def test_named_parameters_unique_and_complete(self):
        net = small_net()
        names = [n for n, _ in net.named_parameters()]
        assert len(names) == len(set(names))
        # conv w+b, bn gamma+beta, linear w+b
        assert len(names) == 6

    def test_named_modules_includes_nesting(self):
        net = Sequential(Sequential(ReLU()), Identity())
        kinds = [type(m).__name__ for _, m in net.named_modules()]
        assert kinds.count("Sequential") == 2
        assert "ReLU" in kinds and "Identity" in kinds

    def test_modules_of_type(self):
        net = small_net()
        assert len(net.modules_of_type(Conv2d)) == 1
        assert len(net.modules_of_type(Linear)) == 1


class TestTrainEval:
    def test_train_eval_propagates(self):
        net = small_net()
        net.eval()
        assert all(not m.training for _, m in net.named_modules())
        net.train()
        assert all(m.training for _, m in net.named_modules())

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(8, 3, 4, 4)) * 3 + 1
        bn.train()
        for _ in range(20):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        # Normalised output should be near zero-mean/unit-var per channel.
        assert abs(out.mean()) < 0.3
        assert abs(out.std() - 1.0) < 0.3

    def test_batchnorm_eval_deterministic(self, rng):
        bn = BatchNorm2d(2)
        bn(Tensor(rng.normal(size=(4, 2, 3, 3))))
        bn.eval()
        x = rng.normal(size=(4, 2, 3, 3))
        np.testing.assert_array_equal(bn(Tensor(x)).data, bn(Tensor(x)).data)

    def test_dropout_identity_in_eval(self, rng):
        d = Dropout(0.9, rng=rng)
        d.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(d(Tensor(x)).data, x)

    def test_dropout_scales_in_train(self, rng):
        d = Dropout(0.5, rng=rng)
        x = np.ones((1000,))
        out = d(Tensor(x)).data
        # Inverted dropout keeps the expectation.
        assert abs(out.mean() - 1.0) < 0.15
        assert set(np.unique(out)).issubset({0.0, 2.0})


class TestStateDict:
    def test_roundtrip_restores_outputs(self, rng):
        net1 = small_net(np.random.default_rng(1))
        net2 = small_net(np.random.default_rng(2))
        x = rng.normal(size=(2, 3, 5, 5))
        net1.eval(), net2.eval()
        assert not np.allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)

    def test_state_dict_contains_bn_buffers(self):
        net = small_net()
        keys = net.state_dict().keys()
        assert any("running_mean" in k for k in keys)
        assert any("running_var" in k for k in keys)

    def test_unknown_key_raises(self):
        net = small_net()
        with pytest.raises(KeyError):
            net.load_state_dict({"nope": np.zeros(1)})


class TestLayers:
    def test_conv_shapes(self, rng):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)
        assert conv.macs_per_output == 27

    def test_conv_no_bias(self, rng):
        conv = Conv2d(3, 4, 1, bias=False, rng=rng)
        assert conv.bias is None
        assert len([p for p in conv.parameters()]) == 1

    def test_maxpool_small_input_is_identity(self, rng):
        pool = MaxPool2d(2)
        x = Tensor(rng.normal(size=(1, 2, 1, 1)))
        assert pool(x) is x

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(4, 2, 3, 3))))
        assert out.shape == (4, 18)

    def test_sequential_indexing_and_append(self):
        seq = Sequential(ReLU())
        seq.append(Identity())
        assert isinstance(seq[0], ReLU)
        assert len(list(iter(seq))) == 2

    def test_bn_fold_affine_matches_eval_forward(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(10):
            bn(Tensor(rng.normal(size=(8, 3, 4, 4)) * 2 + 1))
        bn.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        scale, shift = bn.fold_affine()
        expected = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(bn(Tensor(x)).data, expected, atol=1e-10)


class TestSwapModules:
    def test_swaps_nested_and_list_children(self):
        net = Sequential(Sequential(ReLU()), ReLU())

        swap_modules(net, lambda m: Identity() if isinstance(m, ReLU) else m)
        kinds = [type(m).__name__ for _, m in net.named_modules()]
        assert "ReLU" not in kinds
        assert kinds.count("Identity") == 2

    def test_does_not_recurse_into_replacements(self):
        net = Sequential(Sequential(ReLU()))
        calls = []

        def transform(m):
            calls.append(type(m).__name__)
            if isinstance(m, Sequential):
                return Identity()
            return m

        swap_modules(net, transform)
        # Inner Sequential replaced; its ReLU never visited.
        assert "ReLU" not in calls
