"""Gradient checks: every autograd primitive vs central finite differences."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def numeric_grad(fn, x, g, eps=1e-6):
    """Central-difference gradient of sum(fn(x) * g) w.r.t. x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = ((fn(xp) * g).sum() - (fn(xm) * g).sum()) / (2 * eps)
        it.iternext()
    return grad


def check_unary(op, x, atol=1e-5):
    t = Tensor(x, requires_grad=True)
    out = op(t)
    g = np.random.default_rng(0).normal(size=out.shape)
    out.backward(g)
    num = numeric_grad(lambda v: op(Tensor(v)).data, x, g)
    np.testing.assert_allclose(t.grad, num, atol=atol)


class TestElementwiseGrads:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_add(self):
        x = self.rng.normal(size=(3, 4))
        check_unary(lambda t: t + 2.5, x)

    def test_mul(self):
        x = self.rng.normal(size=(3, 4))
        check_unary(lambda t: t * 3.0, x)

    def test_mul_tensor_both_sides(self):
        a = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div(self):
        x = self.rng.normal(size=(3, 4)) + 3.0
        check_unary(lambda t: 1.0 / t, x)

    def test_pow(self):
        x = np.abs(self.rng.normal(size=(3, 4))) + 0.5
        check_unary(lambda t: t**3, x)

    def test_exp(self):
        check_unary(lambda t: t.exp(), self.rng.normal(size=(3, 3)))

    def test_log(self):
        check_unary(lambda t: t.log(), np.abs(self.rng.normal(size=(3, 3))) + 0.5)

    def test_tanh(self):
        check_unary(lambda t: t.tanh(), self.rng.normal(size=(3, 3)))

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), np.abs(self.rng.normal(size=(3, 3))) + 0.5)

    def test_relu_away_from_kink(self):
        x = self.rng.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(lambda t: t.relu(), x)

    def test_abs_away_from_zero(self):
        x = self.rng.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.7
        check_unary(lambda t: t.abs(), x)

    def test_clip(self):
        x = self.rng.normal(size=(4, 4)) * 2
        x[np.abs(np.abs(x) - 1.0) < 0.05] = 0.0  # avoid the kinks
        check_unary(lambda t: t.clip(-1.0, 1.0), x)


class TestBroadcastGrads:
    def test_broadcast_add_bias(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_broadcast_mul_keepdims(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        s = Tensor(rng.normal(size=(1, 3, 1)), requires_grad=True)
        (a * s).sum().backward()
        assert s.grad.shape == (1, 3, 1)
        np.testing.assert_allclose(s.grad, a.data.sum(axis=(0, 2), keepdims=True))


class TestReductionGrads:
    def test_sum_axis(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4, 5))
        t = Tensor(x, requires_grad=True)
        out = t.sum(axis=1)
        g = rng.normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(t.grad, np.broadcast_to(g[:, None, :], x.shape))

    def test_mean(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 1 / 12))

    def test_max_unique(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_max_ties_share_gradient(self):
        x = np.array([[2.0, 2.0, 1.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestShapeGrads:
    def test_reshape(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(6))

    def test_transpose(self):
        rng = np.random.default_rng(0)
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = t.transpose(2, 0, 1)
        g = rng.normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(t.grad, g.transpose(1, 2, 0))

    def test_getitem(self):
        t = Tensor(np.arange(10.0), requires_grad=True)
        t[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        np.testing.assert_allclose(t.grad, expected)

    def test_concat(self):
        a = Tensor(np.ones((2, 2, 2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3, 2, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        g = np.random.default_rng(0).normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(a.grad, g[:, :2])
        np.testing.assert_allclose(b.grad, g[:, 2:])

    def test_pad_channels(self):
        t = Tensor(np.ones((1, 2, 3, 3)), requires_grad=True)
        out = t.pad_channels(3)
        assert out.shape == (1, 5, 3, 3)
        g = np.random.default_rng(0).normal(size=out.shape)
        out.backward(g)
        np.testing.assert_allclose(t.grad, g[:, :2])


class TestMatmulGrads:
    def test_matmul(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        out = a @ b
        g = rng.normal(size=(4, 5))
        out.backward(g)
        np.testing.assert_allclose(a.grad, g @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ g)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))

    def test_matmul_bit_identical_to_operator(self):
        """Tensor @ routes through core.gemm.pgemm (DTY101); pgemm's
        contract is *bit-identical* results to the serial product, so the
        rerouting must be invisible down to the last ulp — forward and
        both gradients."""
        rng = np.random.default_rng(7)
        ad = rng.normal(size=(64, 48))
        bd = rng.normal(size=(48, 32))
        a = Tensor(ad, requires_grad=True)
        b = Tensor(bd, requires_grad=True)
        out = a @ b
        g = rng.normal(size=out.shape)
        out.backward(g)
        assert np.array_equal(out.data, ad @ bd)
        assert np.array_equal(a.grad, g @ bd.T)
        assert np.array_equal(b.grad, ad.T @ g)


class TestFunctionalGrads:
    def test_conv2d_input_and_weight_grad(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        bt = Tensor(b, requires_grad=True)
        out = F.conv2d(xt, wt, bt, stride=2, padding=1)
        g = rng.normal(size=out.shape)
        out.backward(g)

        num_x = numeric_grad(
            lambda v: F.conv2d(Tensor(v), Tensor(w), Tensor(b), 2, 1).data, x, g
        )
        np.testing.assert_allclose(xt.grad, num_x, atol=1e-5)
        num_w = numeric_grad(
            lambda v: F.conv2d(Tensor(x), Tensor(v), Tensor(b), 2, 1).data, w, g
        )
        np.testing.assert_allclose(wt.grad, num_w, atol=1e-5)
        np.testing.assert_allclose(bt.grad, g.sum(axis=(0, 2, 3)), atol=1e-8)

    def test_maxpool_grad(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 6, 6))
        t = Tensor(x, requires_grad=True)
        out = F.max_pool2d(t, 2)
        g = rng.normal(size=out.shape)
        out.backward(g)
        num = numeric_grad(lambda v: F.max_pool2d(Tensor(v), 2).data, x, g)
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_avgpool_grad(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 6, 6))
        t = Tensor(x, requires_grad=True)
        out = F.avg_pool2d(t, 3)
        g = rng.normal(size=out.shape)
        out.backward(g)
        num = numeric_grad(lambda v: F.avg_pool2d(Tensor(v), 3).data, x, g)
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        out = F.softmax(Tensor(rng.normal(size=(5, 7)) * 10))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), atol=1e-12)

    def test_log_softmax_grad(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        t = Tensor(x, requires_grad=True)
        out = F.log_softmax(t)
        g = rng.normal(size=out.shape)
        out.backward(g)
        num = numeric_grad(lambda v: F.log_softmax(Tensor(v)).data, x, g)
        np.testing.assert_allclose(t.grad, num, atol=1e-5)


class TestBackwardMechanics:
    def test_grad_accumulates_over_multiple_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t).backward(np.array([1.0]))  # d(t^2)/dt = 2t = 4
        np.testing.assert_allclose(t.grad, [4.0])

    def test_backward_requires_scalar_without_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_detach_cuts_tape(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        out = Tensor(np.array([1.0]), requires_grad=True) * d
        out.backward(np.array([1.0]))
        assert t.grad is None

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [1.0])
