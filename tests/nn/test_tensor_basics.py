"""Tensor mechanics not covered by the gradient checks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, _unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float64
        assert t.shape == (2,)

    def test_int_input_promoted_to_float(self):
        assert Tensor(np.arange(3)).dtype == np.float64

    def test_float32_preserved(self):
        assert Tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32

    def test_from_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data

    def test_repr_mentions_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_len_size_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert len(t) == 2 and t.size == 6 and t.ndim == 2

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == 3.5


class TestUnbroadcast:
    def test_prepended_axes_summed(self):
        g = np.ones((4, 3))
        out = _unbroadcast(g, (3,))
        np.testing.assert_array_equal(out, [4.0, 4.0, 4.0])

    def test_singleton_axes_summed(self):
        g = np.ones((2, 5))
        out = _unbroadcast(g, (2, 1))
        np.testing.assert_array_equal(out, [[5.0], [5.0]])

    def test_identity_when_shapes_match(self):
        g = np.ones((2, 2))
        assert _unbroadcast(g, (2, 2)) is g


class TestOpsValues:
    def test_arithmetic_chain(self):
        a = Tensor(np.array([2.0]))
        out = (3.0 - a) / (a + 1.0) * 4.0 - (-a)
        # (3-2)/(3)*4 + 2 = 4/3 + 2
        np.testing.assert_allclose(out.data, [4 / 3 + 2])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_no_tape_for_no_grad_inputs(self):
        out = Tensor(np.ones(2)) + Tensor(np.ones(2))
        assert not out.requires_grad
        assert out._backward is None

    def test_concat_values(self):
        a = Tensor(np.zeros((1, 1, 2, 2)))
        b = Tensor(np.ones((1, 2, 2, 2)))
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (1, 3, 2, 2)
        assert out.data[:, 0].sum() == 0 and out.data[:, 1:].sum() == 8
