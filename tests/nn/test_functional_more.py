"""Additional functional-op coverage: strides, shapes, composite ops."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestConvShapes:
    @pytest.mark.parametrize(
        "in_hw,k,s,p,expect",
        [(8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (7, 3, 2, 1, 4), (5, 5, 1, 0, 1), (9, 1, 3, 0, 3)],
    )
    def test_output_spatial(self, rng, in_hw, k, s, p, expect):
        x = Tensor(rng.normal(size=(1, 2, in_hw, in_hw)))
        w = Tensor(rng.normal(size=(3, 2, k, k)))
        assert F.conv2d(x, w, None, s, p).shape == (1, 3, expect, expect)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 2, 4, 4))),
                     Tensor(rng.normal(size=(3, 5, 3, 3))))

    def test_rect_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 2, 4, 4))),
                     Tensor(rng.normal(size=(3, 2, 3, 2))))

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        want = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, want, atol=1e-12)


class TestPooling:
    def test_overlapping_max_pool(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = F.max_pool2d(Tensor(x), kernel=3, stride=1)
        assert out.shape == (1, 1, 3, 3)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_avg_equals_mean(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.avg_pool2d(Tensor(x), 4)
        np.testing.assert_allclose(out.data[..., 0, 0], x.mean(axis=(2, 3)), atol=1e-12)

    def test_global_avg_pool_shape(self, rng):
        out = F.global_avg_pool2d(Tensor(rng.normal(size=(2, 7, 3, 5))))
        assert out.shape == (2, 7)


class TestLinear:
    def test_matches_manual(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b, atol=1e-12)


class TestDropout:
    def test_p_zero_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_eval_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert F.dropout(x, 0.5, rng, training=False) is x

    def test_grad_flows_through_kept_units(self, rng):
        x = Tensor(np.ones((100,)), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        out.sum().backward()
        kept = out.data != 0
        np.testing.assert_allclose(x.grad[kept], 2.0)
        np.testing.assert_allclose(x.grad[~kept], 0.0)


class TestSoftmaxFamily:
    def test_softmax_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_flatten_matches_reshape(self, rng):
        x = rng.normal(size=(3, 2, 2, 2))
        np.testing.assert_array_equal(F.flatten(Tensor(x)).data, x.reshape(3, 8))
