"""Losses, metrics, and the training loop."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Linear,
    Sequential,
    Tensor,
    Trainer,
    accuracy,
    cross_entropy,
    evaluate,
    iterate_minibatches,
    mse_loss,
    top_k_accuracy,
)


class TestCrossEntropy:
    def test_uniform_logits_log_c(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(10), atol=1e-10)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits, requires_grad=True), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        y = np.array([0, 2, 3])
        cross_entropy(logits, y).backward()
        p = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), y] = 1
        np.testing.assert_allclose(logits.grad, (p - onehot) / 3, atol=1e-10)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))

    def test_numerically_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1e4, -1e4]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]], dtype=float)
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=2) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=2) == 0.0

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)


class TestMinibatches:
    def test_covers_all_data_without_shuffle(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        seen = np.concatenate([xb.reshape(-1) for xb, _ in iterate_minibatches(x, y, 3)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_shuffle_permutes(self):
        x = np.arange(100).reshape(100, 1)
        y = np.arange(100)
        rng = np.random.default_rng(0)
        seen = np.concatenate([xb.reshape(-1) for xb, _ in iterate_minibatches(x, y, 10, rng)])
        assert not np.array_equal(seen, np.arange(100))
        np.testing.assert_array_equal(np.sort(seen), np.arange(100))

    def test_batch_labels_match(self):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        for xb, yb in iterate_minibatches(x, y, 4, np.random.default_rng(1)):
            np.testing.assert_array_equal(xb.reshape(-1).astype(int), yb)


class TestTrainer:
    def test_learns_linearly_separable_task(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = Sequential(Linear(4, 2, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.5), batch_size=32,
                          rng=np.random.default_rng(0))
        hist = trainer.fit(x, y, x, y, epochs=10)
        assert hist.test_acc[-1] > 0.95
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_history_lengths(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        y = rng.integers(0, 2, 32)
        model = Sequential(Linear(4, 2, rng=rng))
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1))
        hist = trainer.fit(x, y, epochs=3)
        assert len(hist.train_loss) == 3
        assert hist.test_acc == []
        assert np.isnan(hist.final_test_acc)

    def test_evaluate_restores_training_mode(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 2, rng=rng))
        model.train()
        evaluate(model, rng.normal(size=(8, 4)), np.zeros(8, dtype=int))
        assert model.training
