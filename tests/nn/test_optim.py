"""Optimisers and LR schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineLR, StepLR, Tensor


def quadratic_params(start=5.0):
    return [Tensor(np.array([start]), requires_grad=True)]


def step_quadratic(opt, params, n=100):
    """Minimise f(p) = p^2 for n steps."""
    for _ in range(n):
        loss = (params[0] * params[0]).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(params[0].data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        assert abs(step_quadratic(SGD(p, lr=0.1, momentum=0.0), p)) < 1e-6

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_params(), quadratic_params()
        v1 = abs(step_quadratic(SGD(p1, lr=0.01, momentum=0.0), p1, n=30))
        v2 = abs(step_quadratic(SGD(p2, lr=0.01, momentum=0.9), p2, n=30))
        assert v2 < v1

    def test_weight_decay_shrinks_params(self):
        p = [Tensor(np.array([1.0]), requires_grad=True)]
        opt = SGD(p, lr=0.1, momentum=0.0, weight_decay=1.0)
        # Zero gradient, only decay.
        p[0].grad = np.zeros(1)
        opt.step()
        assert p[0].data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = quadratic_params()
        opt = SGD(p, lr=0.1)
        before = p[0].data.copy()
        opt.step()  # no backward happened
        np.testing.assert_array_equal(p[0].data, before)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(quadratic_params(), lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_params()
        assert abs(step_quadratic(Adam(p, lr=0.3), p, n=200)) < 1e-3

    def test_bias_correction_first_step_magnitude(self):
        """First Adam step should be ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            p = [Tensor(np.array([0.0]), requires_grad=True)]
            opt = Adam(p, lr=0.1)
            p[0].grad = np.array([scale])
            opt.step()
            assert abs(abs(p[0].data[0]) - 0.1) < 0.01


class TestSchedules:
    def test_step_lr(self):
        p = quadratic_params()
        opt = SGD(p, lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert abs(opt.lr - 0.1) < 1e-12

    def test_cosine_lr_endpoints(self):
        p = quadratic_params()
        opt = SGD(p, lr=1.0)
        sched = CosineLR(opt, t_max=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr < 1e-9

    def test_cosine_monotone_decreasing(self):
        p = quadratic_params()
        opt = SGD(p, lr=1.0)
        sched = CosineLR(opt, t_max=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))
