"""`repro profile lenet odq --trace-out ...` writes a parsable Chrome trace
and prints the phase report — the observability acceptance criterion."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs import log, trace


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    log.reset()
    trace.disable()
    trace.reset()


def test_profile_writes_parsable_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = main([
        "profile", "lenet", "odq",
        "--images", "2", "--batches", "1", "--calib-images", "8",
        "--trace-out", str(out),
    ])
    assert rc == 0

    # Report on stdout mentions every ODQ phase plus the MAC census.
    stdout = capsys.readouterr().out
    for needle in ("model=lenet", "scheme=odq", "quantize",
                   "predict_partial", "mask", "full_result", "MACs skipped"):
        assert needle in stdout

    # Trace file is valid Chrome trace-event JSON with engine spans.
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no complete events in trace"
    names = {e["name"] for e in complete}
    assert "engine.infer" in names
    assert "odq.run" in names
    assert "odq.full_result" in names
    for e in complete:
        assert e["dur"] >= 0
        assert isinstance(e["ts"], (int, float))


def test_profile_jsonl_format(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    rc = main([
        "profile", "lenet", "odq",
        "--images", "2", "--batches", "1", "--calib-images", "8",
        "--trace-out", str(out), "--trace-format", "jsonl",
    ])
    assert rc == 0
    capsys.readouterr()
    lines = out.read_text().strip().split("\n")
    rows = [json.loads(line) for line in lines]
    assert any(r["name"] == "odq.run" for r in rows)
    assert all({"name", "start_us", "duration_us"} <= set(r) for r in rows)


def test_profile_flame_flag(capsys):
    rc = main([
        "profile", "lenet", "odq",
        "--images", "2", "--batches", "1", "--calib-images", "8",
        "--flame",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine.infer" in out
    assert "odq.run" in out
