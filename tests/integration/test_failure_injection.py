"""Failure injection: degenerate inputs the pipeline must survive or
reject loudly (never silently corrupt).
"""

import numpy as np
import pytest

from repro.core.drq import DRQConvExecutor
from repro.core.odq import ODQConvExecutor
from repro.core.static_quant import StaticQuantConvExecutor
from repro.nn import Conv2d, Tensor


class TestDegenerateActivations:
    def test_all_zero_input(self, rng):
        """Constant-zero feature maps (a dead channel upstream) must not
        produce NaNs or division-by-zero anywhere."""
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        x = np.zeros((1, 3, 6, 6))
        for cls, kw in [
            (ODQConvExecutor, {"threshold": 0.2}),
            (DRQConvExecutor, {"threshold": 0.5}),
            (StaticQuantConvExecutor, {"bits": 8}),
        ]:
            ex = cls(conv, "C", **kw)
            ex.calibrate(np.abs(rng.normal(size=(2, 3, 6, 6))))
            ex.freeze()
            out = ex.run(x)
            assert np.isfinite(out).all()

    def test_constant_input(self, rng):
        """Zero-variance inputs give degenerate quantization ranges."""
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        x = np.full((1, 2, 5, 5), 0.7)
        ex = ODQConvExecutor(conv, "C", threshold=0.2)
        ex.calibrate(x)
        ex.freeze()
        assert np.isfinite(ex.run(x)).all()

    def test_huge_dynamic_range(self, rng):
        conv = Conv2d(2, 2, 3, rng=rng)
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        x[0, 0, 0, 0] = 1e6
        ex = StaticQuantConvExecutor(conv, "C", bits=8)
        ex.calibrate(x)
        ex.freeze()
        assert np.isfinite(ex.run(x)).all()


class TestDegenerateWeights:
    def test_all_zero_weights(self, rng):
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        conv.weight.data = np.zeros_like(conv.weight.data)
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        ex = ODQConvExecutor(conv, "C", threshold=0.2)
        ex.calibrate(x)
        ex.freeze()
        out = ex.run(x)
        # With zero weights the only output contribution is the bias.
        expected = np.broadcast_to(conv.bias.data.reshape(1, -1, 1, 1), out.shape)
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_single_giant_weight(self, rng):
        """One outlier weight must not destroy the whole layer (the
        percentile scale saturates it instead)."""
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        conv.weight.data[0, 0, 0, 0] = 1e4
        x = rng.uniform(0, 1, (1, 2, 5, 5))
        ex = ODQConvExecutor(conv, "C", threshold=0.2)
        ex.calibrate(x)
        ex.freeze()
        assert np.isfinite(ex.run(x)).all()
        # The quantized outlier saturates at the grid edge.
        assert ex._qw.max() == ex.qp_w.qmax


class TestMalformedPipelineUse:
    def test_forward_with_wrong_channel_count(self, rng):
        from repro.core.pipeline import QuantizedInferenceEngine
        from repro.core.schemes import static_scheme
        from repro.models import resnet20

        model = resnet20(scale=0.25, rng=rng)
        engine = QuantizedInferenceEngine(model, static_scheme(8))
        engine.calibrate(rng.uniform(0, 1, (4, 3, 16, 16)))
        with pytest.raises(ValueError):
            engine.forward(rng.uniform(0, 1, (1, 5, 16, 16)))
        engine.restore()

    def test_double_restore_harmless(self, rng):
        from repro.core.pipeline import QuantizedInferenceEngine
        from repro.core.schemes import static_scheme
        from repro.models import resnet20

        model = resnet20(scale=0.25, rng=rng)
        engine = QuantizedInferenceEngine(model, static_scheme(8))
        engine.restore()
        engine.restore()
        model.eval()
        out = model(Tensor(rng.uniform(0, 1, (1, 3, 16, 16))))
        assert out.shape == (1, 10)

    def test_empty_batch_evaluate(self, rng):
        from repro.core.pipeline import QuantizedInferenceEngine
        from repro.core.schemes import static_scheme
        from repro.models import resnet20

        model = resnet20(scale=0.25, rng=rng)
        engine = QuantizedInferenceEngine(model, static_scheme(8))
        engine.calibrate(rng.uniform(0, 1, (4, 3, 16, 16)))
        # An empty dataset used to surface as a bare ZeroDivisionError from
        # `correct / len(x)`; the guarded division (NUM402) raises a
        # diagnosable ValueError instead.
        with pytest.raises(ValueError, match="empty dataset"):
            engine.evaluate(np.zeros((0, 3, 16, 16)), np.zeros(0, dtype=int))
        engine.restore()


class TestSimulatorDegenerates:
    def test_empty_network(self):
        from repro.accel.simulator import build_accelerator

        sim = build_accelerator("ODQ").simulate([])
        assert sim.total_cycles == 0
        assert sim.total_energy.total_pj == 0

    def test_layer_with_zero_images(self):
        from repro.accel.simulator import LayerWorkload, build_accelerator

        wl = LayerWorkload(
            name="C", in_channels=4, out_channels=4, kernel=3,
            out_h=4, out_w=4, images=0, macs={"pred_int2": 0, "exec_int4": 0},
        )
        sim = build_accelerator("ODQ").simulate([wl])
        assert np.isfinite(sim.total_cycles)
