"""End-to-end reproduction invariants: train -> quantize -> simulate.

These tests assert the paper's qualitative claims (who wins, in which
direction) on a small trained network — the "shape" the reproduction
must preserve.
"""

import numpy as np
import pytest

from repro.accel.simulator import build_accelerator, workloads_from_records
from repro.core.pipeline import run_scheme
from repro.core.schemes import (
    drq_scheme,
    fp32_scheme,
    odq_scheme,
    static_scheme,
)


ODQ_THRESHOLD = 0.3


@pytest.fixture(scope="module")
def odq_resnet(trained_resnet, tiny_dataset):
    """ODQ-retrained twin (the paper's threshold-in-the-loop step)."""
    import copy

    from repro.core.odq_qat import finetune_odq

    model, _ = trained_resnet
    twin = copy.deepcopy(model)
    finetune_odq(
        twin,
        ODQ_THRESHOLD,
        tiny_dataset.x_train,
        tiny_dataset.y_train,
        tiny_dataset.x_test,
        tiny_dataset.y_test,
        epochs=4,
        lr=0.01,
        rng=np.random.default_rng(9),
    )
    twin.eval()
    return twin


@pytest.fixture(scope="module")
def scheme_results(trained_resnet, odq_resnet, tiny_dataset, calib_batch):
    """Run all Fig.-18/19 schemes once; share across the module's tests.

    FP/static/DRQ rows use the base model; the ODQ row uses the
    ODQ-retrained twin, matching the paper's per-scheme training.
    """
    model, _ = trained_resnet
    x_test, y_test = tiny_dataset.x_test, tiny_dataset.y_test
    results = {}
    for name, scheme, target in [
        ("fp32", fp32_scheme(), model),
        ("int16", static_scheme(16), model),
        ("int8", static_scheme(8), model),
        ("drq84", drq_scheme(8, 4), model),
        ("drq42", drq_scheme(4, 2), model),
        ("odq", odq_scheme(ODQ_THRESHOLD), odq_resnet),
    ]:
        acc, records = run_scheme(target, scheme, calib_batch, x_test, y_test)
        results[name] = (acc, records)
    return results


class TestAccuracyShape:
    def test_model_learned(self, trained_resnet):
        _, history = trained_resnet
        assert history.final_test_acc > 0.3  # far above 10% chance

    def test_int16_matches_fp32(self, scheme_results):
        assert abs(scheme_results["int16"][0] - scheme_results["fp32"][0]) <= 0.05

    def test_drq42_degrades_most(self, scheme_results):
        """The paper's key negative result: DRQ at 4-2 bits collapses."""
        accs = {k: v[0] for k, v in scheme_results.items()}
        assert accs["drq42"] <= accs["drq84"] + 0.02
        assert accs["drq42"] <= accs["fp32"]

    def test_odq_close_to_drq84(self, scheme_results):
        """Headline claim: ODQ 4-2 within a small drop of DRQ 8-4."""
        accs = {k: v[0] for k, v in scheme_results.items()}
        assert accs["odq"] >= accs["drq42"] - 0.05
        assert accs["odq"] >= accs["drq84"] - 0.15

    def test_odq_sensitive_fraction_in_paper_range(self, scheme_results):
        _, records = scheme_results["odq"]
        total = sum(r.outputs_total for r in records.values())
        sens = sum(r.sensitive_total for r in records.values())
        # On our substrate the accuracy-preserving threshold leaves more
        # outputs sensitive than the paper's 8-50% (see EXPERIMENTS.md);
        # the fraction must still be a genuine mix, not all-or-nothing.
        assert 0.05 < sens / total < 0.95


class TestPerformanceShape:
    def test_execution_time_ordering(self, scheme_results):
        """Fig. 19: ODQ < DRQ < INT8 < INT16 execution time."""
        sims = {}
        for scheme, accel in [("int16", "INT16"), ("int8", "INT8"),
                              ("drq84", "DRQ"), ("odq", "ODQ")]:
            _, records = scheme_results[scheme]
            sims[scheme] = build_accelerator(accel).simulate(
                workloads_from_records(records)
            )
        t = {k: s.total_cycles for k, s in sims.items()}
        assert t["odq"] < t["drq84"] < t["int8"] < t["int16"]

    def test_odq_speedup_magnitudes(self, scheme_results):
        """Shape check on the headline numbers: large vs INT16 (paper
        97.8%), substantial vs DRQ (paper 67.6%)."""
        sims = {}
        for scheme, accel in [("int16", "INT16"), ("drq84", "DRQ"), ("odq", "ODQ")]:
            _, records = scheme_results[scheme]
            sims[scheme] = build_accelerator(accel).simulate(
                workloads_from_records(records)
            )
        vs_int16 = 1 - sims["odq"].total_cycles / sims["int16"].total_cycles
        vs_drq = 1 - sims["odq"].total_cycles / sims["drq84"].total_cycles
        assert vs_int16 > 0.85
        assert vs_drq > 0.2

    def test_energy_ordering(self, scheme_results):
        """Fig. 21: same ordering for energy."""
        energies = {}
        for scheme, accel in [("int16", "INT16"), ("int8", "INT8"),
                              ("drq84", "DRQ"), ("odq", "ODQ")]:
            _, records = scheme_results[scheme]
            sim = build_accelerator(accel).simulate(workloads_from_records(records))
            energies[scheme] = sim.total_energy.total_pj
        assert energies["odq"] < energies["drq84"] < energies["int8"] < energies["int16"]


class TestMotivationShape:
    def test_drq_mixes_precision_in_sensitive_outputs(
        self, trained_resnet, tiny_dataset, calib_batch
    ):
        """Figs 2-3 exist because DRQ feeds low-precision inputs into
        sensitive outputs: verify the phenomenon on our network."""
        from repro.analysis.motivation import collect_motivation_stats

        model, _ = trained_resnet
        stats = collect_motivation_stats(
            model, calib_batch[:16], tiny_dataset.x_test[:16], output_threshold=0.15
        )
        assert len(stats) == 19
        # Some layer has sensitive outputs fed by >25% low-precision inputs.
        worst = max(s.lowprec_input_buckets[1:].sum() for s in stats)
        assert worst > 0.25
        # And DRQ's precision loss on sensitive outputs is nonzero.
        assert max(s.precision_loss_sensitive for s in stats) > 0

    def test_odq_precision_loss_below_drq(self, trained_resnet, odq_resnet, tiny_dataset, calib_batch):
        """Section 6.1: ODQ's per-layer precision loss beats DRQ's at the
        same low bit widths (4-2), using the ODQ-retrained model as the
        paper does."""
        from repro.analysis.motivation import collect_motivation_stats
        from repro.core.pipeline import QuantizedInferenceEngine
        from repro.core.stats import odq_precision_loss_for_layer

        model, _ = trained_resnet
        x = tiny_dataset.x_test[:16]
        drq_stats = collect_motivation_stats(
            model, calib_batch[:16], x, ODQ_THRESHOLD, hi_bits=4, lo_bits=2
        )

        engine = QuantizedInferenceEngine(odq_resnet, odq_scheme(ODQ_THRESHOLD))
        try:
            engine.capture_inputs = True
            engine.calibrate(calib_batch[:16])
            engine.forward(x)
            odq_losses = []
            for ex in engine.executors.values():
                xi = ex.record.extra["last_input"]
                o_fp = ex.reference_forward(xi)
                o_odq = ex.run(xi)
                odq_losses.append(odq_precision_loss_for_layer(o_fp, o_odq, ODQ_THRESHOLD))
        finally:
            engine.restore()
        drq_losses = [s.precision_loss_sensitive for s in drq_stats]
        assert np.mean(odq_losses) < np.mean(drq_losses)
