"""`python -m repro serve --model lenet --scheme odq --port 0` end to end.

Starts the real CLI process, discovers the OS-assigned port from its
stdout banner, exercises /healthz and a JSON /predict round-trip, then
interrupts it and verifies a clean exit.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np

REPO = pathlib.Path(__file__).resolve().parents[2]


def _start_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", "lenet", "--scheme", "odq", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _read_url(proc, timeout=60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise AssertionError(
                    f"server exited early ({proc.returncode}): {proc.stdout.read()}"
                )
            continue
        if "listening on" in line:
            return line.rsplit(" ", 1)[-1].strip()
    raise AssertionError("server never printed its listen URL")


def test_serve_cli_round_trip():
    proc = _start_server("--workers", "1", "--calib-images", "16")
    try:
        url = _read_url(proc)

        with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
            health = json.loads(resp.read())
        assert health["status"] == "ok"
        assert health["session"]["model"] == "lenet"
        shape = health["session"]["input_shape"]

        img = np.zeros(shape)
        img[:, 4:12, 4:12] = 0.8  # any valid image
        req = urllib.request.Request(
            url + "/predict",
            data=json.dumps({"input": img.tolist()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            body = json.loads(resp.read())
        assert body["batch"] == 1
        assert len(body["predictions"]) == 1

        proc.send_signal(signal.SIGINT)
        ret = proc.wait(timeout=30)
        assert ret == 0, f"serve exited {ret}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
