"""The quantized inference engine across all paper topologies.

ResNet gets the deep treatment in test_end_to_end; here the remaining
architectures (VGG's plain stacks, DenseNet's concatenative blocks,
LeNet's pooled pipeline) are pushed through calibration, every scheme,
and the accelerator simulator to guard against topology-specific bugs
(e.g. 1x1 convs in transitions, convs after concat).
"""

import numpy as np
import pytest

from repro.accel.simulator import build_accelerator, workloads_from_records
from repro.core.pipeline import run_scheme
from repro.core.schemes import drq_scheme, odq_scheme, static_scheme
from repro.models import LeNet5, densenet, vgg16
from repro.nn import SGD, Trainer


def quick_train(model, ds, epochs=2, lr=0.05):
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=lr, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(ds.x_train, ds.y_train, epochs=epochs)
    model.eval()
    return model


@pytest.fixture(scope="module", params=["vgg16", "densenet", "lenet5"])
def trained_other(request, tiny_dataset, mnist_dataset):
    name = request.param
    rng = np.random.default_rng(7)
    if name == "lenet5":
        ds = mnist_dataset
        model = LeNet5(num_classes=10, rng=rng)
    elif name == "vgg16":
        ds = tiny_dataset
        model = vgg16(scale=0.25, rng=rng)
    else:
        ds = tiny_dataset
        model = densenet(scale=0.5, rng=rng, depth=10)
    return name, quick_train(model, ds), ds


class TestAllTopologies:
    def test_every_scheme_runs(self, trained_other):
        name, model, ds = trained_other
        calib = ds.x_train[:24]
        for scheme in (static_scheme(8), drq_scheme(8, 4), odq_scheme(0.3)):
            acc, records = run_scheme(
                model, scheme, calib, ds.x_test[:24], ds.y_test[:24]
            )
            assert 0.0 <= acc <= 1.0
            assert all(r.outputs_total > 0 for r in records.values())

    def test_simulator_consumes_all_topologies(self, trained_other):
        name, model, ds = trained_other
        calib = ds.x_train[:24]
        _, records = run_scheme(
            model, odq_scheme(0.3), calib, ds.x_test[:16], ds.y_test[:16]
        )
        wls = workloads_from_records(records)
        sim = build_accelerator("ODQ").simulate(wls)
        assert sim.total_cycles > 0
        assert np.isfinite(sim.total_energy.total_pj)

    def test_conv_layer_counts(self, trained_other):
        name, model, ds = trained_other
        calib = ds.x_train[:16]
        _, records = run_scheme(
            model, static_scheme(8), calib, ds.x_test[:8], ds.y_test[:8]
        )
        expected = {"vgg16": 13, "densenet": 9, "lenet5": 2}
        assert len(records) == expected[name]
