"""Model topologies: depths, shapes, and the registry."""

import pytest

from repro.models import (
    LeNet5,
    available_models,
    build_model,
    densenet,
    resnet20,
    resnet56,
    vgg16,
    PAPER_MODELS,
)
from repro.models.resnet import BasicBlock
from repro.nn import Conv2d, Tensor


def conv_count(model):
    return len([m for _, m in model.named_modules() if isinstance(m, Conv2d)])


class TestResNet:
    def test_resnet20_has_20_weight_layers(self):
        model = resnet20(scale=0.25)
        # 19 convs + 1 fc = 20 weighted layers.
        assert conv_count(model) == 19
        assert model.depth == 20

    def test_resnet56_has_56_weight_layers(self):
        model = resnet56(scale=0.125)
        assert conv_count(model) == 55
        assert model.depth == 56

    def test_forward_shape(self, rng):
        model = resnet20(scale=0.25, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_option_a_shortcut_is_parameter_free(self):
        block = BasicBlock(4, 8, stride=2)
        # Only the two convs + two BNs carry parameters.
        assert len(block.parameters()) == 6

    def test_shortcut_downsamples(self, rng):
        block = BasicBlock(4, 8, stride=2, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_stage_strides(self, rng):
        """Feature maps halve twice across the three stages."""
        model = resnet20(scale=0.25, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 32, 32)))
        h = model.bn1(model.conv1(x)).relu()
        s1 = model.stage1(h)
        s2 = model.stage2(s1)
        s3 = model.stage3(s2)
        assert s1.shape[2:] == (32, 32)
        assert s2.shape[2:] == (16, 16)
        assert s3.shape[2:] == (8, 8)


class TestVGG:
    def test_vgg16_has_13_convs(self):
        assert conv_count(vgg16(scale=0.125)) == 13

    def test_forward_shape(self, rng):
        model = vgg16(scale=0.125, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)


class TestDenseNet:
    def test_depth_rule(self):
        with pytest.raises(ValueError):
            densenet(depth=21)

    def test_channel_growth(self, rng):
        model = densenet(scale=0.5, rng=rng, depth=10)
        out = model(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 10)

    def test_dense_layer_concatenates(self, rng):
        from repro.models.densenet import DenseLayer

        layer = DenseLayer(4, growth=3, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 7, 8, 8)


class TestLeNet:
    def test_forward_28x28(self, rng):
        model = LeNet5(rng=rng)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_parameter_count_classic(self):
        model = LeNet5()
        # Classic LeNet-5 has ~61.7k parameters.
        total = sum(p.size for p in model.parameters())
        assert 60_000 < total < 64_000


class TestRegistry:
    def test_paper_models_buildable(self, rng):
        for name in PAPER_MODELS:
            model = build_model(name, scale=0.125, rng=rng)
            out = model(Tensor(rng.normal(size=(1, 3, 16, 16))))
            assert out.shape == (1, 10)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_available_lists_all(self):
        names = available_models()
        assert set(PAPER_MODELS).issubset(names)
        assert "lenet5" in names

    def test_num_classes_propagates(self, rng):
        model = build_model("resnet20", num_classes=100, scale=0.25, rng=rng)
        out = model(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 100)

    def test_scale_changes_width_not_depth(self):
        small = build_model("resnet20", scale=0.25)
        big = build_model("resnet20", scale=1.0)
        assert conv_count(small) == conv_count(big)
        p_small = sum(p.size for p in small.parameters())
        p_big = sum(p.size for p in big.parameters())
        assert p_big > 10 * p_small
