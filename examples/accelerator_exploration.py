#!/usr/bin/env python
"""Design-space exploration of the reconfigurable ODQ accelerator.

Walks the accelerator substrate without any training:

* Table 1 — the bubble-free PE allocation frontier;
* the Fig.-14/15/16 scheduling example, cycle for cycle;
* idle-PE behaviour of static vs dynamic allocation across a sweep of
  sensitive-output fractions (Figs 11 and 20's mechanism);
* a synthetic ResNet-20-shaped workload through all four Table-2
  accelerator models.

Run:  python examples/accelerator_exploration.py
"""

import numpy as np

from repro.accel import (
    DRQAccelerator,
    Int8Accelerator,
    Int16Accelerator,
    LayerWorkload,
    ODQAccelerator,
    PEAllocation,
    choose_allocation,
    ideal_dynamic_schedule,
    idle_fractions,
    odq_dynamic_schedule,
    static_schedule,
    table1_configurations,
)
from repro.utils.report import ascii_table


def show_table1() -> None:
    rows = [
        [str(c), f"{100 * c.max_sensitive_fraction:.0f}%"]
        for c in table1_configurations()
    ]
    print(ascii_table(["allocation", "max bubble-free sensitive %"], rows,
                      title="Table 1: the allocation frontier"))


def show_scheduling_example() -> None:
    print("\nFig. 14-16 example: six executor arrays, per-array loads 7/4/4/7/4/4")
    st = static_schedule([7, 4, 4, 7, 4, 4], 6)
    dy = ideal_dynamic_schedule([7, 4, 4, 7, 4, 4], 6)
    od = odq_dynamic_schedule([11, 7, 6, 6], 6, granularity=1)
    print(f"  static assignment:     {st.makespan_cycles} cycles "
          f"({st.idle_cycles} idle cycles)   [paper: 21]")
    print(f"  ideal work stealing:   {dy.makespan_cycles} cycles            [paper: 15]")
    print(f"  candidate-set scheme:  {od.makespan_cycles} cycles            [paper: 15]")


def show_idle_sweep() -> None:
    print("\nIdle PEs vs sensitive fraction (static P12/E15 vs dynamic):")
    rows = []
    static = PEAllocation(12, 15)
    for s in (0.05, 0.1, 0.2, 0.3, 0.41, 0.5, 0.66):
        st = idle_fractions(s, static).overall_idle_fraction
        alloc = choose_allocation(s)
        dy = idle_fractions(s, alloc).overall_idle_fraction
        rows.append([f"{100 * s:.0f}%", f"{100 * st:.1f}%", str(alloc), f"{100 * dy:.1f}%"])
    print(ascii_table(["sensitive", "static idle", "dynamic alloc", "dynamic idle"], rows))


def resnet20_shaped_workloads(sensitive: float) -> list[LayerWorkload]:
    """Synthetic workload with ResNet-20's layer geometry (32x32 input)."""
    rng = np.random.default_rng(0)
    plan = (
        [(3, 16, 32)]
        + [(16, 16, 32)] * 6
        + [(16, 32, 16)] + [(32, 32, 16)] * 5
        + [(32, 64, 8)] + [(64, 64, 8)] * 5
    )
    wls = []
    for i, (cin, cout, hw) in enumerate(plan):
        total_out = cout * hw * hw
        macs = total_out * cin * 9
        counts = rng.multinomial(int(total_out * sensitive), np.ones(cout) / cout)
        wls.append(
            LayerWorkload(
                name=f"C{i + 1}", in_channels=cin, out_channels=cout, kernel=3,
                out_h=hw, out_w=hw, images=1,
                macs={
                    "int16": macs, "int8": macs,
                    "drq_hi": macs // 2, "drq_lo": macs - macs // 2,
                    "pred_int2": macs, "exec_int4": int(macs * sensitive),
                },
                sensitive_fraction=sensitive,
                per_channel_sensitive=counts,
                input_sensitive_fraction=0.5,
            )
        )
    return wls


def show_accelerator_comparison() -> None:
    print("\nResNet-20-shaped workload (25% sensitive) on the Table-2 designs:")
    wls = resnet20_shaped_workloads(0.25)
    ref = Int16Accelerator().simulate(wls)
    rows = []
    for accel in (Int16Accelerator(), Int8Accelerator(), DRQAccelerator(), ODQAccelerator()):
        sim = accel.simulate(wls)
        rows.append(
            [
                accel.spec.name,
                f"{sim.total_cycles:,.0f}",
                f"{sim.normalized_time(ref):.4f}",
                f"{sim.normalized_energy(ref):.4f}",
            ]
        )
    print(ascii_table(["accelerator", "cycles", "norm. time", "norm. energy"], rows))


def main() -> None:
    show_table1()
    show_scheduling_example()
    show_idle_sweep()
    show_accelerator_comparison()


if __name__ == "__main__":
    main()
