#!/usr/bin/env python
"""Quickstart: train a small ResNet-20, run ODQ inference, inspect masks.

The 60-second tour of the library:

1. generate a synthetic CIFAR-10 stand-in;
2. train ResNet-20 (NumPy autograd substrate);
3. retrain briefly with the ODQ threshold in the loop (paper Section 3);
4. run output-directed dynamic quantized inference and compare accuracy
   against static INT8 and the DRQ baseline;
5. feed the dumped sensitivity masks to the ODQ accelerator simulator.

Run:  python examples/quickstart.py
"""

import copy

import numpy as np

from repro.accel import ODQAccelerator, Int16Accelerator, workloads_from_records
from repro.core import (
    drq_scheme,
    finetune_odq,
    odq_scheme,
    run_scheme,
    static_scheme,
)
from repro.data import synthetic_cifar10
from repro.models import resnet20
from repro.nn import SGD, Trainer

THRESHOLD = 0.3  # ODQ sensitivity threshold (see examples/threshold_search.py)


def main() -> None:
    print("== 1. data ==")
    ds = synthetic_cifar10(
        num_train=320, num_test=96, image_size=16, noise=0.12, max_shift=1, seed=7
    )
    print(f"train {ds.x_train.shape}, test {ds.x_test.shape}, {ds.num_classes} classes")

    print("\n== 2. train ResNet-20 ==")
    model = resnet20(scale=0.25, rng=np.random.default_rng(5))
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(5),
        verbose=True,
    )
    trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test, epochs=6)
    model.eval()

    print("\n== 3. ODQ threshold-in-the-loop retraining ==")
    odq_model = copy.deepcopy(model)
    finetune_odq(
        odq_model, THRESHOLD,
        ds.x_train, ds.y_train, ds.x_test, ds.y_test,
        epochs=4, lr=0.01, rng=np.random.default_rng(9),
    )
    odq_model.eval()

    print("\n== 4. quantized inference ==")
    calib = ds.x_train[:48]
    rows = []
    for name, scheme, target in [
        ("INT8 static", static_scheme(8), model),
        ("DRQ 8-4", drq_scheme(8, 4), model),
        ("DRQ 4-2", drq_scheme(4, 2), model),
        ("ODQ 4-2", odq_scheme(THRESHOLD), odq_model),
    ]:
        acc, records = run_scheme(target, scheme, calib, ds.x_test, ds.y_test)
        rows.append((name, acc, records))
        print(f"  {name:12s} top-1 accuracy: {100 * acc:.1f}%")

    print("\n== 5. accelerator simulation (mask dumps -> cycles) ==")
    _, _, odq_records = rows[-1]
    workloads = workloads_from_records(odq_records)
    odq_sim = ODQAccelerator().simulate(workloads)
    int16_sim = Int16Accelerator().simulate(workloads)
    speedup = 1 - odq_sim.total_cycles / int16_sim.total_cycles
    sens = sum(r.sensitive_total for r in odq_records.values()) / max(
        sum(r.outputs_total for r in odq_records.values()), 1
    )
    print(f"  sensitive outputs:            {100 * sens:.1f}%")
    print(f"  ODQ accelerator cycles:       {odq_sim.total_cycles:,.0f}")
    print(f"  INT16 baseline cycles:        {int16_sim.total_cycles:,.0f}")
    print(f"  execution-time reduction:     {100 * speedup:.1f}%")


if __name__ == "__main__":
    main()
