#!/usr/bin/env python
"""The Section-2 motivation study (Figures 2-5) on ResNet-20.

Shows *why* input-directed quantization (DRQ) is insufficient: sensitive
outputs get polluted by low-precision inputs (Figs 2-3) while insensitive
outputs waste high-precision computation (Figs 4-5).

Run:  python examples/motivation_study.py
"""

import numpy as np

from repro.analysis.motivation import (
    collect_motivation_stats,
    render_bucket_table,
    render_scalar_chart,
)
from repro.data import synthetic_cifar10
from repro.models import resnet20
from repro.nn import SGD, Trainer


def main() -> None:
    ds = synthetic_cifar10(
        num_train=320, num_test=96, image_size=16, noise=0.12, max_shift=1, seed=7
    )
    model = resnet20(scale=0.25, rng=np.random.default_rng(5))
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(5),
    )
    print("training ResNet-20 ...")
    trainer.fit(ds.x_train, ds.y_train, epochs=6)
    model.eval()

    stats = collect_motivation_stats(
        model, ds.x_train[:48], ds.x_test[:32], output_threshold=0.2
    )

    print()
    print(render_bucket_table(
        stats, "low",
        "Fig. 2: % low-precision inputs per *sensitive* output (DRQ 8-4)"))
    print()
    print(render_scalar_chart(
        stats, "precision_loss_sensitive",
        "Fig. 3: DRQ precision loss on sensitive outputs"))
    print()
    print(render_bucket_table(
        stats, "high",
        "Fig. 4: % high-precision inputs per *insensitive* output (DRQ 8-4)"))
    print()
    print(render_scalar_chart(
        stats, "extra_precision_insensitive",
        "Fig. 5: extra precision (Eq. 1) wasted on insensitive outputs"))

    worst = max(s.precision_loss_sensitive for s in stats)
    print(
        f"\nTakeaway: DRQ leaks up to {worst:.3f} of precision loss into "
        "sensitive outputs while still spending high-precision MACs on "
        "insensitive ones — the gap ODQ's output-directed prediction closes."
    )


if __name__ == "__main__":
    main()
