#!/usr/bin/env python
"""DoReFa quantization-aware training of VGG-16 + full scheme comparison.

Demonstrates the second training path the paper relies on: DoReFa-Net
fake-quant training (STE), followed by the Fig.-18 scheme comparison on
the resulting network, including the ODQ retraining step.

Run:  python examples/train_quantized_vgg.py
"""

import copy

import numpy as np

from repro.analysis.accuracy import compare_accuracy, render_fig18
from repro.core import finetune_odq
from repro.data import synthetic_cifar10
from repro.models import vgg16
from repro.nn import SGD, Trainer
from repro.quant import quantize_model_inplace

THRESHOLD = 0.3


def main() -> None:
    ds = synthetic_cifar10(
        num_train=320, num_test=96, image_size=16, noise=0.12, max_shift=1, seed=7
    )

    print("== DoReFa 4-bit quantization-aware training of VGG-16 ==")
    model = vgg16(scale=0.25, rng=np.random.default_rng(11))
    quantize_model_inplace(model, w_bits=4, a_bits=4)
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(11),
        verbose=True,
    )
    trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test, epochs=6)
    model.eval()

    print("\n== ODQ retraining (threshold in the loop) ==")
    odq_model = copy.deepcopy(model)
    finetune_odq(
        odq_model, THRESHOLD,
        ds.x_train, ds.y_train, ds.x_test, ds.y_test,
        epochs=3, lr=0.005, rng=np.random.default_rng(12),
    )
    odq_model.eval()

    print("\n== Fig.-18 style comparison ==")
    comparison = compare_accuracy(
        model, "vgg16", "cifar10-syn",
        ds.x_train[:48], ds.x_test, ds.y_test,
        THRESHOLD, odq_model=odq_model,
    )
    print(render_fig18([comparison]))


if __name__ == "__main__":
    main()
