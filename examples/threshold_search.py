#!/usr/bin/env python
"""Adaptive threshold search (paper Section 3 + Table 3 + Figure 22).

Reproduces the paper's procedure on a small ResNet-20:

* pick a "relatively large" starting threshold from the distribution of
  the predictor's partial outputs;
* retrain the network with the threshold in the loop, evaluate, and keep
  halving until accuracy is within tolerance of full precision;
* sweep a threshold range to draw the Fig.-22 accuracy-vs-INT2 tradeoff.

Run:  python examples/threshold_search.py
"""

import numpy as np

from repro.analysis.sensitivity import render_table3, render_threshold_sweep
from repro.core.threshold import (
    adaptive_threshold_search,
    initial_threshold,
    threshold_sweep,
)
from repro.data import synthetic_cifar10
from repro.models import resnet20
from repro.nn import SGD, Trainer


def main() -> None:
    ds = synthetic_cifar10(
        num_train=320, num_test=96, image_size=16, noise=0.12, max_shift=1, seed=7
    )
    model = resnet20(scale=0.25, rng=np.random.default_rng(5))
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(5),
    )
    print("training ResNet-20 ...")
    trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test, epochs=6)
    model.eval()
    calib = ds.x_train[:48]
    finetune = dict(
        x_train=ds.x_train, y_train=ds.y_train,
        x_test=ds.x_test, y_test=ds.y_test,
        epochs=3, lr=0.01, rng=np.random.default_rng(9),
    )

    theta0 = initial_threshold(model, calib)
    print(f"\ninitial threshold from predictor-output distribution: {theta0:.4f}")

    print("\nadaptive halving search (each candidate retrains the model):")
    result = adaptive_threshold_search(
        model, calib, ds.x_test, ds.y_test,
        max_accuracy_drop=0.05, start_threshold=theta0,
        max_halvings=4, finetune=finetune,
    )
    for theta, acc in result.trace:
        marker = " <= selected" if theta == result.threshold else ""
        print(f"  theta = {theta:8.4f}   ODQ top-1 = {100 * acc:5.1f}%{marker}")
    print(
        f"converged: {result.converged}; FP32 baseline "
        f"{100 * result.baseline_accuracy:.1f}%, drop "
        f"{100 * result.accuracy_drop:.1f} points"
    )
    print("\n" + render_table3({"resnet20": result.threshold}))

    print("\nFig.-22 style sweep:")
    points = threshold_sweep(
        model, calib, ds.x_test, ds.y_test,
        thresholds=[0.05, 0.15, 0.3, 0.6, 1.0],
        finetune=finetune,
    )
    print(render_threshold_sweep(points, "Threshold analysis (ResNet-20)"))


if __name__ == "__main__":
    main()
