#!/usr/bin/env python
"""Drive the full paper pipeline through the experiment workbench.

The :class:`repro.analysis.workbench.Workbench` is what the benchmark
harness uses internally: it trains/caches models, runs the adaptive
threshold search (with the paper's retraining step), and builds the
ODQ-retrained twins.  This example uses it directly to regenerate the
ResNet-20 column of Figures 18/19/21 in one go, then saves the mask dump
so the simulation stage can be re-run standalone:

    python examples/paper_pipeline.py
    python -m repro simulate resnet20_masks.npz

Set REPRO_SCALE=default for paper-sized models/images (much slower).
"""

from repro.accel.dump import save_workloads
from repro.accel.simulator import workloads_from_records
from repro.analysis.accuracy import compare_accuracy, render_fig18
from repro.analysis.precision_loss import per_layer_precision_loss, render_precision_loss
from repro.analysis.performance import compare_accelerators, render_fig19, render_fig21
from repro.analysis.workbench import Workbench
from repro.core.pipeline import run_scheme
from repro.core.schemes import odq_scheme


def main() -> None:
    wb = Workbench()
    ds = wb.dataset("cifar10")

    print("== training / threshold search (cached within this process) ==")
    tm = wb.trained_model("resnet20", "cifar10")
    theta = wb.odq_threshold("resnet20", "cifar10")
    odq_model = wb.odq_model("resnet20", "cifar10")
    print(f"FP32 test accuracy: {100 * tm.fp_accuracy:.1f}%")
    print(f"adaptive threshold (Table 3 entry): {theta:.4f}")

    calib = wb.calibration_batch("cifar10")

    print("\n== Fig. 18 (accuracy) ==")
    acc_cmp = compare_accuracy(
        tm.model, "resnet20", "cifar10", calib, ds.x_test, ds.y_test,
        theta, odq_model=odq_model,
    )
    print(render_fig18([acc_cmp]))

    print("\n== Figs. 19/21 (execution time & energy) ==")
    perf_cmp = compare_accelerators(
        tm.model, "resnet20", calib, ds.x_test[:64], ds.y_test[:64],
        theta, odq_model=odq_model,
    )
    print(render_fig19([perf_cmp]))
    print()
    print(render_fig21([perf_cmp]))

    print("\n== Section 6.1: per-layer precision loss (ODQ vs DRQ 4-2) ==")
    rows = per_layer_precision_loss(
        tm.model, calib, ds.x_test[:16], theta, odq_model=odq_model
    )
    print(render_precision_loss(rows, "Precision loss on sensitive outputs"))

    print("\n== mask dump (Section 5.2 hand-off) ==")
    _, records = run_scheme(
        odq_model, odq_scheme(theta), calib, ds.x_test[:32], ds.y_test[:32]
    )
    path = save_workloads("resnet20_masks.npz", workloads_from_records(records))
    print(f"wrote {path} — replay with: python -m repro simulate {path}")


if __name__ == "__main__":
    main()
