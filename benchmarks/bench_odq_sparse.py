"""Dense-vs-sparse result generation: crossover sweep and speedup gate.

Sweeps the ODQ sensitive ratio (via per-layer threshold quantiles) on a
resnet20/cifar10 session and measures end-to-end ``engine.infer`` latency
under four execution styles:

``seed``
    the pre-column-cache executor emulated faithfully: predictor and
    full result each redo quantize/pad/im2col, the dense full result is
    always computed, ``np.where`` selects (what the repo shipped before
    the sparse path existed);
``dense``
    column-cache dense path (one shared prep, one full GEMM);
``sparse``
    gather-only-sensitive-rows path (one cross-term GEMM + scatter);
``auto``
    per-call dispatch on the sensitive-row density.

Artefacts: ``BENCH_odq_sparse.json`` at the repo root (CI uploads it) and
``results/odq_sparse_speedup.txt``.  ``--check`` enforces the PR gates:

* headline — at some sweep point with measured sensitive ratio <= 40%,
  ``auto`` must beat ``seed`` by >= 1.5x;
* dispatch sanity — ``auto`` is never slower than the better of
  dense/sparse by more than 5% (plus a small absolute timer-noise slack).

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_odq_sparse.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_odq_sparse.py``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import types
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_odq_sparse.json"

SPEEDUP_GATE = 1.5        #: min seed->auto speedup at <=40% sensitivity
RATIO_GATE = 0.40         #: the sensitive-ratio regime the gate covers
AUTO_TOLERANCE = 1.05     #: auto within 5% of best(dense, sparse) ...
AUTO_ABS_SLACK_S = 5e-4   #: ... plus timer-noise slack on tiny layers

TARGET_RATIOS = (0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.60, 0.80)


def _build_session():
    from repro.serve.config import ServeConfig
    from repro.serve.session import ModelSession

    # Default-scale layers (32px, full width): at small scale every GEMM is
    # tiny and the sweep measures timer noise, not the paths.  Respect an
    # explicit REPRO_SCALE if the caller set one.
    os.environ.setdefault("REPRO_SCALE", "default")
    config = ServeConfig(model="resnet20", scheme="odq", dataset="cifar10",
                         train_epochs=0, calib_images=32)
    return ModelSession(config)


def _collect_partial_samples(engine, x) -> dict:
    """One probing inference with partial-magnitude sampling enabled."""
    for ex in engine.executors.values():
        ex.collect_partials = True
    engine.infer(x)
    samples = {}
    for name, ex in engine.executors.items():
        chunks = ex.record.extra.pop("partial_abs_samples", [])
        samples[name] = np.concatenate(chunks) if chunks else np.array([0.0])
        ex.collect_partials = False
    engine.reset_records()
    return samples


def _set_thresholds(engine, samples, target_ratio: float) -> None:
    """Per-layer thresholds hitting ~target_ratio sensitivity everywhere."""
    for name, ex in engine.executors.items():
        ex.threshold = float(np.quantile(samples[name], 1.0 - target_ratio))


def _set_exec_path(engine, path: str) -> None:
    for ex in engine.executors.values():
        ex.exec_path = path


def _seed_style_run(self, x):
    """The pre-PR executor, replicated instruction-for-instruction.

    Before the column cache existed, ``predict_partial`` and
    ``full_result`` each redid quantize/pad/im2col independently, the
    integer convolutions round-tripped through ``np.rint``/``int64``,
    the partial was shifted as an int64 tensor, and the dense full
    result was always computed with ``np.where`` selecting at the end.
    (Verified against ``git show`` of the seed ``repro/core/odq.py``.)
    """
    from repro.core.base import int_conv2d
    from repro.core.masks import mask_from_magnitude
    from repro.quant.bitsplit import split_planes
    from repro.quant.uniform import quantize
    from repro.utils.im2col import pad_nchw

    qp_a = self._qp_a_for(x)
    scale = qp_a.scale * self.qp_w.scale

    # -- seed predict_partial: quantize -> split -> pad -> int conv ------
    q = quantize(x, qp_a)
    e_low = (float(split_planes(q, qp_a, self.low_bits).low.mean())
             if self.compensate_low_bits else 0.0)
    qpad = q
    if self.conv.padding:
        qpad = pad_nchw(q.astype(np.int64), self.conv.padding,
                        value=qp_a.zero_point).astype(np.int64)
    q_high = split_planes(qpad, qp_a, self.low_bits).high
    hh = int_conv2d(q_high, self._qw_high, self.conv.stride, 0)
    shifted = hh << (2 * self.low_bits)
    partial = scale * (shifted + (e_low - qp_a.zero_point) * self._w_sum)
    if self.conv.bias is not None:
        partial = partial + self.conv.bias.data.reshape(1, -1, 1, 1)

    mask = mask_from_magnitude(partial, self.effective_threshold)

    # -- seed full_result: re-quantize, always-dense int conv ------------
    q2 = quantize(x, qp_a)
    acc = int_conv2d(q2, self._qw, self.conv.stride, self.conv.padding,
                     pad_value=qp_a.zero_point)
    full = scale * (acc - qp_a.zero_point * self._w_sum)
    if self.conv.bias is not None:
        full = full + self.conv.bias.data.reshape(1, -1, 1, 1)
    return np.where(mask.mask, full, partial)


def _patch_seed_style(engine):
    originals = {}
    for name, ex in engine.executors.items():
        originals[name] = ex.run
        ex.run = types.MethodType(_seed_style_run, ex)
    return originals


def _unpatch(engine, originals) -> None:
    for name, ex in engine.executors.items():
        ex.run = originals[name]


def _timed_infer_seconds(engine, x) -> float:
    t0 = time.perf_counter()
    engine.infer(x)
    return time.perf_counter() - t0


def _measure_point(engine, x, repeats: int) -> dict:
    """Interleaved min-of-``repeats`` latency for every execution style.

    Two choices keep the style-vs-style comparison honest on a shared
    single core:

    * *minimum* over repeats — contention only ever adds time, so the
      min is the least-biased estimator of each style's true cost (same
      reasoning as ``timeit``'s ``min()``);
    * *interleaving* — one timed run per style per round, so slow
      periods of machine load hit every style instead of whichever style
      happened to be measured during them.

    The first round is a warm-up (caches/BLAS) and is discarded.
    Returns ``{"times": {style: seconds}, "agg": {style: census}}``.
    """
    styles = ("seed", "dense", "sparse", "auto")
    times: dict = {s: [] for s in styles}
    agg: dict = {}
    for rnd in range(repeats + 1):
        for style in styles:
            if style == "seed":
                originals = _patch_seed_style(engine)
                try:
                    t = _timed_infer_seconds(engine, x)
                finally:
                    _unpatch(engine, originals)
            else:
                _set_exec_path(engine, style)
                engine.reset_records()
                t = _timed_infer_seconds(engine, x)
                if rnd == 0:
                    agg[style] = _aggregate_records(engine)
            if rnd > 0:  # round 0 is warm-up
                times[style].append(t)
    return {"times": {s: min(times[s]) for s in styles}, "agg": agg}


def _aggregate_records(engine) -> dict:
    """Sensitivity + dispatch census summed over all executors."""
    outputs = sensitive = rows = rows_computed = 0
    path_calls: dict = {}
    for ex in engine.executors.values():
        rec = ex.record
        outputs += rec.outputs_total
        sensitive += rec.sensitive_total
        rows += rec.extra.get("exec_rows_total", 0)
        rows_computed += rec.extra.get("exec_rows_computed", 0)
        for p, n in rec.extra.get("exec_path_calls", {}).items():
            path_calls[p] = path_calls.get(p, 0) + n
    return {
        "sensitive_ratio": sensitive / outputs if outputs else 0.0,
        "row_fraction": rows_computed / rows if rows else 0.0,
        "path_calls": path_calls,
    }


def run(check: bool = False, images: int = 16, repeats: int = 5) -> int:
    from repro.obs import trace
    from repro.utils.report import ascii_table

    trace.disable()
    np.random.seed(0)
    session = _build_session()
    engine = session.engine
    x = session.sample_inputs[:images]
    if len(x) < images:
        x = np.concatenate([x] * (-(-images // len(x))))[:images]

    samples = _collect_partial_samples(engine, x)

    sweep = []
    for target in TARGET_RATIOS:
        _set_thresholds(engine, samples, target)
        measured = _measure_point(engine, x, repeats)
        point = {
            "target_ratio": target,
            "times_ms": {s: t * 1e3 for s, t in measured["times"].items()},
            "measured_ratio": measured["agg"]["dense"]["sensitive_ratio"],
            "row_fraction": measured["agg"]["sparse"]["row_fraction"],
            "auto_paths": measured["agg"]["auto"]["path_calls"],
        }

        t = point["times_ms"]
        point["speedup_seed_auto"] = t["seed"] / t["auto"]
        point["speedup_seed_sparse"] = t["seed"] / t["sparse"]
        point["speedup_dense_sparse"] = t["dense"] / t["sparse"]
        sweep.append(point)

    # Empirical dense/sparse crossover: the row fraction where the
    # dense->sparse speedup crosses 1.0 (linear interpolation).
    crossover = None
    ordered = sorted(sweep, key=lambda p: p["row_fraction"])
    for lo, hi in zip(ordered, ordered[1:]):
        s_lo, s_hi = lo["speedup_dense_sparse"], hi["speedup_dense_sparse"]
        if (s_lo - 1.0) * (s_hi - 1.0) <= 0 and s_lo != s_hi:
            f = (s_lo - 1.0) / (s_lo - s_hi)
            crossover = lo["row_fraction"] + f * (
                hi["row_fraction"] - lo["row_fraction"])
            break

    # -- gates ---------------------------------------------------------------
    eligible = [p for p in sweep if p["measured_ratio"] <= RATIO_GATE]
    headline = max((p["speedup_seed_auto"] for p in eligible), default=0.0)
    headline_ok = headline >= SPEEDUP_GATE
    auto_ok = all(
        p["times_ms"]["auto"] / 1e3
        <= AUTO_TOLERANCE * min(p["times_ms"]["dense"],
                                p["times_ms"]["sparse"]) / 1e3
        + AUTO_ABS_SLACK_S
        for p in sweep
    )

    rows = [
        [
            f"{p['target_ratio']:.2f}",
            f"{p['measured_ratio'] * 100:.1f}%",
            f"{p['row_fraction'] * 100:.1f}%",
            f"{p['times_ms']['seed']:.2f}",
            f"{p['times_ms']['dense']:.2f}",
            f"{p['times_ms']['sparse']:.2f}",
            f"{p['times_ms']['auto']:.2f}",
            f"{p['speedup_seed_auto']:.2f}x",
            f"{p['speedup_dense_sparse']:.2f}x",
        ]
        for p in sweep
    ]
    table = ascii_table(
        ["target", "sensitive", "rows", "seed ms", "dense ms",
         "sparse ms", "auto ms", "seed/auto", "dense/sparse"],
        rows,
        title="ODQ result generation: dense vs sparse sweep (resnet20/cifar10)",
    )
    summary = [
        table,
        "",
        f"dense/sparse crossover row fraction: "
        f"{'n/a (no crossing in sweep)' if crossover is None else f'{crossover:.2f}'}",
        f"headline: best seed->auto speedup at <= {RATIO_GATE:.0%} sensitivity "
        f"= {headline:.2f}x (gate >= {SPEEDUP_GATE}x) "
        f"{'PASS' if headline_ok else 'FAIL'}",
        f"auto dispatch within {AUTO_TOLERANCE - 1:.0%} of best path: "
        f"{'PASS' if auto_ok else 'FAIL'}",
    ]
    text = "\n".join(summary)
    print(text)

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "odq_sparse_speedup.txt").write_text(text + "\n")

    payload = {
        "bench": "odq_sparse",
        "model": "resnet20",
        "dataset": "cifar10",
        "images": images,
        "repeats": repeats,
        "sweep": sweep,
        "crossover_row_fraction": crossover,
        "gates": {
            "headline_speedup": headline,
            "headline_gate": SPEEDUP_GATE,
            "headline_ok": headline_ok,
            "auto_within_tolerance": auto_ok,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[json written to {JSON_PATH}]")

    if check and not (headline_ok and auto_ok):
        return 1
    return 0


def test_odq_sparse_speedup_gate():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a speedup gate fails")
    parser.add_argument("--images", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    return run(check=args.check, images=args.images, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
