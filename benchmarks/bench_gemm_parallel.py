"""Row-blocked GEMM pool scaling: threads 1/2/4/8 on VGG-scale GEMMs.

Measures :func:`repro.core.gemm.pgemm` against the serial ``a @ b`` on
the im2col GEMM shapes a VGG-style stack actually produces (thousands of
output rows, k = c_in*k*k in the hundreds-to-thousands), at pool widths
1, 2, 4 and 8.  Timing is interleaved min-of-N: every round times every
(case, width) pair once, so machine-load spikes hit all configurations
equally, and the minimum over rounds is the least-biased cost estimate
(``timeit`` reasoning).  The BLAS's own threading is pinned to 1
(``OMP_NUM_THREADS`` / ``OPENBLAS_NUM_THREADS``) so the pool is the only
source of parallelism being measured.

Artefacts: ``BENCH_gemm_parallel.json`` at the repo root (CI uploads it)
and ``results/gemm_parallel.txt``.  ``--check`` enforces the PR gates:

* exactness — ``pgemm(a, b)`` equals ``a @ b`` bit-for-bit at every
  width on every case (unconditional: this must hold everywhere);
* scaling — >= 1.8x total speedup at 4 threads over 1 thread,
  enforced only when the host exposes >= 4 usable cores (a 1-core
  container cannot speed anything up; the JSON then records
  ``gate_enforced: false`` with the reason, and CI runners — which do
  have the cores — enforce it).

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_gemm_parallel.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_gemm_parallel.py``
"""

from __future__ import annotations

import os

# Pin BLAS-internal threading *before* numpy loads its BLAS: the pool's
# scaling numbers are meaningless if OpenBLAS also fans out per block.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_gemm_parallel.json"

THREAD_COUNTS = (1, 2, 4, 8)
SPEEDUP_GATE = 1.8        #: min 1-thread -> 4-thread total speedup
GATE_MIN_CORES = 4        #: cores required before the gate is enforced

#: (name, m, k, n) — im2col GEMM shapes of a VGG-style stack:
#: m = images * out_h * out_w output rows, k = c_in * 3 * 3, n = c_out.
CASES = (
    ("conv3-128 @ 16x16x8", 2048, 1152, 128),
    ("conv3-256 @  8x8x16", 1024, 2304, 256),
    ("conv3-512 @  4x4x32", 512, 4608, 512),
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_operands(rng: np.random.Generator):
    return [
        (name, rng.standard_normal((m, k)), rng.standard_normal((k, n)))
        for name, m, k, n in CASES
    ]


def run(check: bool = False, repeats: int = 5) -> int:
    from repro.core import gemm
    from repro.obs import trace
    from repro.utils.report import ascii_table

    trace.disable()
    rng = np.random.default_rng(0x5EED)
    operands = _build_operands(rng)
    cores = _usable_cores()

    # Auto-tune once (verifies the block floor), then drop the FLOP
    # crossover so every case takes the pooled path at width > 1; the
    # *verified* per-block floor is kept, so exactness still holds.
    tune = gemm.tuning()
    gemm.configure(min_flops=1.0e6)

    references = {name: a @ b for name, a, b in operands}
    exact: dict[str, dict[int, bool]] = {name: {} for name, _, _ in operands}
    times: dict[str, dict[int, list[float]]] = {
        name: {t: [] for t in THREAD_COUNTS} for name, _, _ in operands
    }
    pooled: dict[int, int] = {}

    for rnd in range(repeats + 1):  # round 0 is warm-up, discarded
        for threads in THREAD_COUNTS:
            gemm.configure(threads=threads)
            for name, a, b in operands:
                t0 = time.perf_counter()
                out = gemm.pgemm(a, b)
                dt = time.perf_counter() - t0
                if rnd == 0:
                    exact[name][threads] = bool(
                        np.array_equal(out, references[name])
                    )
                else:
                    times[name][threads].append(dt)
            if rnd == 0:
                pooled[threads] = gemm.stats().pooled_calls
    gemm.shutdown()

    best = {
        name: {t: min(ts) for t, ts in per.items()} for name, per in times.items()
    }
    totals = {t: sum(best[name][t] for name in best) for t in THREAD_COUNTS}
    speedups = {t: totals[1] / totals[t] if totals[t] > 0 else 0.0
                for t in THREAD_COUNTS}

    exact_ok = all(ok for per in exact.values() for ok in per.values())
    gate_enforced = cores >= GATE_MIN_CORES and tune.verified
    if not tune.verified:
        gate_reason = ("BLAS failed block-exactness verification; "
                       "pool refuses to parallelize")
    elif cores < GATE_MIN_CORES:
        gate_reason = (f"host exposes {cores} usable core(s) "
                       f"(< {GATE_MIN_CORES}); scaling not measurable")
    else:
        gate_reason = f"host exposes {cores} usable cores"
    scaling_ok = (not gate_enforced) or speedups[4] >= SPEEDUP_GATE

    rows = [
        [name]
        + [f"{best[name][t] * 1e3:.2f}" for t in THREAD_COUNTS]
        + [f"{best[name][1] / best[name][4]:.2f}x",
           "yes" if all(exact[name].values()) else "NO"]
        for name, _, _ in operands
    ]
    rows.append(
        ["TOTAL"]
        + [f"{totals[t] * 1e3:.2f}" for t in THREAD_COUNTS]
        + [f"{speedups[4]:.2f}x", "yes" if exact_ok else "NO"]
    )
    table = ascii_table(
        ["case (m,k,n per CASES)"]
        + [f"{t}t ms" for t in THREAD_COUNTS]
        + ["1t/4t", "exact"],
        rows,
        title=(
            "pgemm row-blocked pool scaling — VGG-scale im2col GEMMs "
            f"(min of {repeats}, interleaved; BLAS pinned to 1 thread)"
        ),
    )
    summary = [
        table,
        "",
        f"block floor: {tune.min_block_mnk} (m*n*k/block, "
        f"verified={tune.verified}); usable cores: {cores}",
        "exactness gate (pgemm == a @ b at every width): "
        + ("PASS" if exact_ok else "FAIL"),
        f"scaling gate (>= {SPEEDUP_GATE}x at 4 threads): "
        + (
            f"{'PASS' if speedups[4] >= SPEEDUP_GATE else 'FAIL'} "
            f"({speedups[4]:.2f}x)"
            if gate_enforced
            else f"not enforced — {gate_reason} ({speedups[4]:.2f}x measured)"
        ),
    ]
    text = "\n".join(summary)
    print(text)

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "gemm_parallel.txt").write_text(text + "\n")

    payload = {
        "bench": "gemm_parallel",
        "repeats": repeats,
        "usable_cores": cores,
        "blas_threads_pinned": 1,
        "tuning": {
            "min_block_mnk": tune.min_block_mnk,
            "verified": tune.verified,
        },
        "cases": [
            {
                "name": name,
                "m": m,
                "k": k,
                "n": n,
                "times_ms": {str(t): best[name][t] * 1e3 for t in THREAD_COUNTS},
                "exact": {str(t): exact[name][t] for t in THREAD_COUNTS},
            }
            for name, m, k, n in CASES
        ],
        "total_times_ms": {str(t): totals[t] * 1e3 for t in THREAD_COUNTS},
        "speedup_vs_1t": {str(t): round(speedups[t], 3) for t in THREAD_COUNTS},
        "gates": {
            "exact_ok": exact_ok,
            "speedup_4t": round(speedups[4], 3),
            "speedup_gate": SPEEDUP_GATE,
            "gate_enforced": gate_enforced,
            "gate_reason": gate_reason,
            "scaling_ok": scaling_ok,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[json written to {JSON_PATH}]")

    if check and not (exact_ok and scaling_ok):
        return 1
    return 0


def test_gemm_parallel_gate():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    return run(check=args.check, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
