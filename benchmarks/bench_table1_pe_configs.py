"""Table 1 — PE-array configurations vs the maximum sensitive-output
fraction that causes no pipeline bubbles.

This is the analytic heart of the reconfigurable accelerator: with ``p``
predictor arrays (1 cycle/MAC) and ``e`` executor arrays (3 cycles/MAC on
the sensitive fraction ``s``), the pipeline is bubble-free iff
``s <= e / (3 p)``.  The bench asserts the published table *exactly*.
"""

from repro.accel.alloc import table1_configurations
from repro.analysis.performance import render_table1

#: Published Table 1 (percentages floored, as printed in the paper).
PAPER_TABLE1 = {
    (9, 18): 66,
    (12, 15): 41,
    (15, 12): 26,
    (18, 9): 16,
    (21, 6): 9,
}


def test_table1_pe_configurations(benchmark, emit):
    configs = benchmark(table1_configurations)
    emit("table1_pe_configs", render_table1())

    assert len(configs) == len(PAPER_TABLE1)
    for cfg in configs:
        key = (cfg.predictor_arrays, cfg.executor_arrays)
        assert int(100 * cfg.max_sensitive_fraction) == PAPER_TABLE1[key], key
