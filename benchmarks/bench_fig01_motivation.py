"""Figure 1 — motivating example: input- vs output-directed sensitivity.

LeNet-5 on (synthetic) MNIST.  We quantify the two mismatch cases the
figure illustrates: sensitive outputs computed mostly from low-precision
inputs (hurts accuracy) and insensitive outputs computed mostly from
high-precision inputs (wastes computation).
"""

import numpy as np
import pytest

from repro.analysis.motivation import fig1_example
from repro.models import LeNet5
from repro.nn import SGD, Trainer


@pytest.fixture(scope="module")
def lenet_mnist(wb):
    ds = wb.dataset("mnist")
    model = LeNet5(num_classes=ds.num_classes, rng=np.random.default_rng(3))
    trainer = Trainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(3),
    )
    trainer.fit(ds.x_train, ds.y_train, epochs=3)
    model.eval()
    return model, ds


def test_fig01_motivating_example(benchmark, lenet_mnist, emit):
    model, ds = lenet_mnist
    calib = ds.x_train[:32]
    x = ds.x_test[:32]

    result = benchmark.pedantic(
        fig1_example, args=(model, calib, x, 0.2), rounds=1, iterations=1
    )

    text = (
        "Fig. 1: input-directed quantization mismatch on LeNet-5 / MNIST-syn\n"
        f"  layers analysed: {result.layers}\n"
        f"  case 1 (sensitive outputs from >50% low-precision inputs): "
        f"{100 * result.case1_fraction:.1f}%\n"
        f"  case 2 (insensitive outputs from >50% high-precision inputs): "
        f"{100 * result.case2_fraction:.1f}%"
    )
    emit("fig01_motivation", text)

    # Both mismatch cases must actually occur (that's the figure's point).
    assert result.case1_fraction + result.case2_fraction > 0.0
