"""Table 3 — per-model ODQ thresholds from the adaptive halving search.

The paper publishes 0.5 / 0.5 / 0.3 / 0.05 for ResNet-56 / ResNet-20 /
VGG-16 / DenseNet.  Our models and data differ, so the *values* re-derive
differently; the bench reproduces the *procedure* (threshold candidates
halve, each retrains, first acceptable one wins) and the *property* that
optimal thresholds vary per model.
"""

import pytest

from repro.analysis.sensitivity import render_table3
from repro.config import PAPER_THRESHOLDS
from repro.models.registry import PAPER_MODELS


@pytest.fixture(scope="module")
def thresholds(wb):
    return {name: wb.odq_threshold(name, "cifar10") for name in PAPER_MODELS}


def test_table3_adaptive_thresholds(benchmark, thresholds, emit):
    benchmark(lambda: dict(thresholds))

    lines = [render_table3(thresholds), "", "Paper's published values:"]
    for name, theta in PAPER_THRESHOLDS.items():
        lines.append(f"  {name}: {theta}")
    emit("table3_thresholds", "\n".join(lines))

    assert set(thresholds) == set(PAPER_MODELS)
    assert all(t > 0 for t in thresholds.values())


def test_table3_search_trace_halves(benchmark, wb):
    """The search trace follows the paper's halving rule."""
    from repro.core.threshold import adaptive_threshold_search

    ds = wb.dataset("cifar10")
    tm = wb.trained_model("resnet20", "cifar10")
    result = benchmark.pedantic(
        adaptive_threshold_search,
        args=(tm.model, wb.calibration_batch("cifar10"), ds.x_test[:48], ds.y_test[:48]),
        kwargs=dict(
            max_accuracy_drop=0.05,
            start_threshold=0.8,
            max_halvings=3,
            finetune=wb._finetune_kwargs("cifar10"),
        ),
        rounds=1,
        iterations=1,
    )
    thetas = [t for t, _ in result.trace]
    for a, b in zip(thetas, thetas[1:]):
        assert b == pytest.approx(a / 2)
