"""Figures 9-10 — % insensitive output features per layer under ODQ.

ResNet-56 (Fig. 9) and ResNet-20 (Fig. 10).  The paper's takeaway is the
*considerable variation across layers and models*, which motivates the
dynamic PE allocation; the benches assert that variation exists.
"""


from repro.analysis.sensitivity import (
    per_layer_insensitivity,
    render_insensitivity_chart,
)


def _insensitivity(wb, model_name):
    theta = wb.odq_threshold(model_name, "cifar10")
    model = wb.odq_model(model_name, "cifar10")
    ds = wb.dataset("cifar10")
    calib = wb.calibration_batch("cifar10")
    return per_layer_insensitivity(model, calib, ds.x_test[:32], theta)


def test_fig10_resnet20_insensitive_per_layer(benchmark, wb, emit):
    layers = benchmark.pedantic(
        _insensitivity, args=(wb, "resnet20"), rounds=1, iterations=1
    )
    emit(
        "fig10_insensitive_resnet20",
        render_insensitivity_chart(
            layers, "Fig. 10: % insensitive output features per layer (ResNet-20, ODQ)"
        ),
    )
    fracs = [l.insensitive_fraction for l in layers]
    assert len(layers) == 19
    # Variation across layers (the figure's point).
    assert max(fracs) - min(fracs) > 0.1


def test_fig09_resnet56_insensitive_per_layer(benchmark, wb, emit):
    layers = benchmark.pedantic(
        _insensitivity, args=(wb, "resnet56"), rounds=1, iterations=1
    )
    emit(
        "fig09_insensitive_resnet56",
        render_insensitivity_chart(
            layers, "Fig. 9: % insensitive output features per layer (ResNet-56, ODQ)"
        ),
    )
    fracs = [l.insensitive_fraction for l in layers]
    assert len(layers) == 55
    assert max(fracs) - min(fracs) > 0.1
