"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantified justifications for the
accelerator's and predictor's design decisions:

* executor workload scheduling: static vs the paper's candidate-set
  dynamic scheme vs ideal work stealing (Figs 14-16's motivation);
* dynamic vs static PE allocation at the whole-network level;
* the predictor's sign-magnitude weight split and E[q_l] compensation
  (this repo's substrate adaptations — see DESIGN.md section 7).
"""

import numpy as np
import pytest

from repro.accel.alloc import PEAllocation
from repro.accel.schedule import (
    ideal_dynamic_schedule,
    odq_dynamic_schedule,
    static_schedule,
)
from repro.accel.simulator import ODQAccelerator, workloads_from_records
from repro.core.odq import ODQConvExecutor
from repro.core.pipeline import run_scheme
from repro.nn import Conv2d
from repro.utils.report import ascii_table


@pytest.fixture(scope="module")
def skewed_workloads():
    rng = np.random.default_rng(0)
    return rng.geometric(0.02, size=32).astype(np.int64)  # heavy-tailed OFM loads


def test_ablation_scheduler(benchmark, skewed_workloads, emit):
    loads = skewed_workloads
    res_static = static_schedule(loads, 9)
    res_odq = benchmark(odq_dynamic_schedule, loads, 9)
    res_ideal = ideal_dynamic_schedule(loads, 9)

    rows = [
        [r.scheme, r.makespan_cycles, f"{100 * r.idle_fraction:.1f}%"]
        for r in (res_static, res_odq, res_ideal)
    ]
    emit(
        "ablation_scheduler",
        ascii_table(
            ["scheduler", "makespan (cycles)", "idle"],
            rows,
            title="Ablation: executor workload scheduling (Figs 14-16)",
        ),
    )
    assert res_ideal.makespan_cycles <= res_odq.makespan_cycles <= res_static.makespan_cycles
    # The candidate-set scheme recovers most of the static->ideal gap.
    gap_static = res_static.makespan_cycles - res_ideal.makespan_cycles
    gap_odq = res_odq.makespan_cycles - res_ideal.makespan_cycles
    assert gap_odq <= 0.5 * gap_static or gap_static == 0


def test_ablation_pe_allocation(benchmark, wb, odq_setup, emit):
    """Dynamic Table-1 allocation vs the best single static split."""
    model, theta, ds = odq_setup
    from repro.core.schemes import odq_scheme

    _, records = run_scheme(
        model, odq_scheme(theta), wb.calibration_batch("cifar10"),
        ds.x_test[:32], ds.y_test[:32],
    )
    wls = workloads_from_records(records)

    dynamic = benchmark(
        lambda: ODQAccelerator(allocation="dynamic").simulate(wls).total_cycles
    )
    rows = [["dynamic (Table 1)", f"{dynamic:.3e}", "1.000"]]
    static_best = None
    for p, e in [(9, 18), (12, 15), (15, 12), (18, 9), (21, 6)]:
        cycles = ODQAccelerator(allocation=PEAllocation(p, e)).simulate(wls).total_cycles
        rows.append([f"static P{p}/E{e}", f"{cycles:.3e}", f"{cycles / dynamic:.3f}"])
        static_best = cycles if static_best is None else min(static_best, cycles)

    emit(
        "ablation_pe_allocation",
        ascii_table(
            ["allocation", "cycles", "vs dynamic"],
            rows,
            title="Ablation: dynamic vs static PE allocation (whole network)",
        ),
    )
    # Dynamic matches or beats every static split.
    assert dynamic <= static_best * 1.001


def _predictor_quality(variant_kwargs, rng_seed=0):
    """Mean |full - partial| of one random layer under a predictor variant."""
    r = np.random.default_rng(rng_seed)
    x = np.abs(r.normal(size=(4, 16, 10, 10))) * 0.3
    conv = Conv2d(16, 8, 3, padding=1, rng=r)
    ex = ODQConvExecutor(conv, "C", threshold=0.2, **variant_kwargs)
    ex.calibrate(x)
    ex.freeze()
    return float(np.abs(ex.full_result(x) - ex.predict_partial(x)).mean())


def test_ablation_predictor_variants(benchmark, emit):
    errors = {
        "compensated (default)": np.mean(
            [_predictor_quality({}, s) for s in range(3)]
        ),
        "no E[q_l] compensation": np.mean(
            [_predictor_quality({"compensate_low_bits": False}, s) for s in range(3)]
        ),
        "max-abs weight scale": np.mean(
            [_predictor_quality({"weight_percentile": 100.0}, s) for s in range(3)]
        ),
    }
    benchmark(_predictor_quality, {})
    rows = [[k, f"{v:.4f}"] for k, v in errors.items()]
    emit(
        "ablation_predictor",
        ascii_table(
            ["predictor variant", "mean |full - partial|"],
            rows,
            title="Ablation: sensitivity-predictor design choices",
        ),
    )
    assert errors["compensated (default)"] <= errors["no E[q_l] compensation"]
