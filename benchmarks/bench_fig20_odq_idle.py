"""Figure 20 — % idle PEs with the reconfigurable (dynamic) ODQ allocation.

The dynamic Table-1 re-allocation per layer plus the Fig.-16 workload
scheduler bring PE idleness down from the 14-50% of static allocation
(Fig. 11) to at most ~18% in the paper.  We assert dynamic < static.
"""

import pytest

from repro.accel.alloc import PEAllocation
from repro.analysis.idleness import (
    dynamic_allocation_idleness,
    render_idleness,
    static_allocation_idleness,
)
from repro.analysis.sensitivity import per_layer_insensitivity


@pytest.fixture(scope="module")
def layer_sensitivities(wb):
    theta = wb.odq_threshold("resnet20", "cifar10")
    model = wb.odq_model("resnet20", "cifar10")
    ds = wb.dataset("cifar10")
    return per_layer_insensitivity(
        model, wb.calibration_batch("cifar10"), ds.x_test[:32], theta
    )


def test_fig20_dynamic_allocation_idleness(benchmark, layer_sensitivities, emit):
    rows = benchmark(dynamic_allocation_idleness, layer_sensitivities)
    emit(
        "fig20_odq_idle",
        render_idleness(
            rows, "Fig. 20: % idle PEs with reconfigurable ODQ (dynamic allocation)"
        ),
    )

    dynamic_mean = sum(r.overall_idle for r in rows) / len(rows)
    static_rows = static_allocation_idleness(layer_sensitivities, PEAllocation(12, 15))
    static_mean = sum(r.overall_idle for r in static_rows) / len(static_rows)

    # Dynamic allocation must beat static on average and stay modest.
    assert dynamic_mean < static_mean
    assert dynamic_mean < 0.35
