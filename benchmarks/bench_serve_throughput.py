"""Serving throughput — naive rebuild-per-request vs cached session vs
cached session + dynamic micro-batching (the ``repro.serve`` headline).

The one-shot scripts pay the whole build pipeline (model init,
calibration, DoReFa bit-plane packing) on every request; the serving
subsystem amortizes it once per ``(model, scheme, threshold)`` and then
coalesces requests into engine micro-batches.  Shape asserted: cached
beats naive, batched beats cached, and the full stack clears the >= 5x
bar over naive by a wide margin.
"""

from repro.serve.bench import run_serve_benchmark
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import SessionManager
from repro.serve.worker import WorkerPool
from repro.serve.batcher import MicroBatcher

CONFIG = ServeConfig(
    model="lenet",
    scheme="odq",
    dataset="mnist",
    train_epochs=0,
    calib_images=64,
    max_batch_size=8,
    max_wait_ms=2.0,
    workers=2,
)


def test_serve_throughput(benchmark, emit):
    manager = SessionManager()
    session = manager.get_or_create(CONFIG)

    # Benchmark the serving hot path: a full micro-batch through the pool.
    images = [session.sample_inputs[i % len(session.sample_inputs)][None]
              for i in range(CONFIG.max_batch_size)]
    batcher = MicroBatcher(max_batch_size=CONFIG.max_batch_size, max_wait_ms=1.0)
    pool = WorkerPool(session, batcher, metrics=MetricsRegistry(),
                      num_workers=CONFIG.workers)
    with pool:
        def kernel():
            futures = [batcher.submit(img) for img in images]
            return [f.result(timeout=60) for f in futures]

        benchmark(kernel)

    # The three-path comparison (this is the committed artefact).
    result = run_serve_benchmark(
        CONFIG, requests=64, naive_requests=4, sessions=manager
    )
    lines = [result.render(), ""]
    lines.append(
        f"cached  vs naive: {result.speedup('cached'):6.1f}x\n"
        f"batched vs naive: {result.speedup('batched'):6.1f}x\n"
        f"batched vs cached: {result.speedup('batched', 'cached'):5.1f}x"
    )
    busy = result.paths["batched"].worker_busy
    if busy:
        # Per-worker busy fraction makes thread-scaling runs readable:
        # near-1.0 fractions mean the pool was compute-bound; low
        # fractions mean batching starved the workers (or GEMM threads
        # oversubscribed the cores).
        lines.append("")
        lines.append("worker busy fractions (batched): " + "  ".join(
            f"{w['name']}={w['busy_fraction'] * 100.0:.1f}%" for w in busy
        ))
    emit("serve_throughput", "\n".join(lines))

    naive = result.paths["naive"].requests_per_second
    cached = result.paths["cached"].requests_per_second
    batched = result.paths["batched"].requests_per_second
    assert cached > naive, "session cache must beat rebuild-per-request"
    assert batched > cached, "micro-batching must beat serial single-image"
    # The acceptance bar (observed ~20-30x on the small scale).
    assert batched >= 5.0 * naive, (
        f"batched path only {batched / naive:.1f}x over naive"
    )
