"""Distributed-tracing overhead on the replica cluster serving path.

Runs the same mixed-size request sweep through two 2-replica
:class:`repro.cluster.ClusterPool` instances — one spawned with the
tracer enabled and a :class:`repro.obs.collector.TelemetryCollector`
attached, one with tracing off — and compares throughput.  Timing is
interleaved min-of-N (every round times both pools once, tracing toggled
in the submitting process to match each pool's replicas) so load spikes
hit both configurations equally.  BLAS and the in-tree GEMM pool are
pinned to 1 thread, as in ``bench_cluster_scaling.py``.

Artefacts: ``BENCH_cluster_trace_overhead.json`` at the repo root,
``results/cluster_trace_overhead.txt``, and
``results/cluster_trace_sample.json`` — the merged multi-process Chrome
trace from the traced run (CI uploads it).  ``--check`` enforces:

* trace integrity — unconditional: the merged timeline has **zero
  orphan spans**, and every request trace forms a single tree (exactly
  one ``trace_root``) that reaches at least one replica lane;
* drift coverage — unconditional: the drift monitor fed by the
  collector holds a gauge-backed snapshot for every layer the replicas
  sampled;
* overhead — throughput with tracing + telemetry collection must be
  within ``2%`` of tracing-off, enforced only when the host exposes
  >= 2 usable cores (a 1-core container timeshares the replicas and the
  telemetry I/O, so the ratio is dominated by scheduling noise; the
  JSON then records ``gate_enforced: false`` with the reason, and CI
  runners — which do have the cores — enforce it).

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_cluster_trace_overhead.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_cluster_trace_overhead.py``
"""

from __future__ import annotations

import os

# Pin BLAS-internal threading *before* numpy loads its BLAS: the
# overhead ratio is meaningless if OpenBLAS fans out nondeterministically.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_cluster_trace_overhead.json"

REPLICAS = 2
OVERHEAD_GATE = 0.02      #: max allowed traced-vs-untraced slowdown
GATE_MIN_CORES = 2        #: cores required before the overhead gate applies
N_REQUESTS = 16           #: requests per timed round
MAX_BATCH = 8             #: chunk size — also the request-size spread


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _serve_config():
    from repro.serve.config import ServeConfig

    return ServeConfig(
        model="lenet",
        scheme="odq",
        dataset="mnist",
        train_epochs=0,
        calib_images=32,
        max_batch_size=MAX_BATCH,
        replicas=REPLICAS,
        gemm_threads=1,
        port=0,
    )


def _requests(session, rng: np.random.Generator) -> list[np.ndarray]:
    """Mixed-size request batches, some spanning multiple chunks."""
    base = session.sample_inputs
    out = []
    for _ in range(N_REQUESTS):
        n = int(rng.integers(1, MAX_BATCH + 2))  # 1 .. MAX_BATCH+1 images
        idx = rng.integers(0, base.shape[0], size=n)
        out.append(np.ascontiguousarray(base[idx], dtype=np.float64))
    return out


def _traced_sweep(pool, reqs, trace) -> float:
    """One traced round: mint a TraceContext per request, time the sweep."""
    t0 = time.perf_counter()
    futs = []
    for arr in reqs:
        with trace.request_context(
            "bench.request", batch=int(arr.shape[0])
        ) as (_sp, ctx):
            futs.append(pool.submit(arr, ctx=ctx))
    for f in futs:
        f.result(timeout=300.0)
    return time.perf_counter() - t0


def _plain_sweep(pool, reqs) -> float:
    t0 = time.perf_counter()
    futs = [pool.submit(a) for a in reqs]
    for f in futs:
        f.result(timeout=300.0)
    return time.perf_counter() - t0


def run(check: bool = False, repeats: int = 3) -> int:
    from repro.cluster import ClusterPool
    from repro.obs import trace
    from repro.obs.collector import TelemetryCollector, trace_trees
    from repro.obs.drift import DriftMonitor
    from repro.serve.session import ModelSession
    from repro.serve.metrics import MetricsRegistry
    from repro.utils.report import ascii_table

    cores = _usable_cores()
    rng = np.random.default_rng(0x70D)
    config = _serve_config()

    trace.disable()
    session = ModelSession(config)  # request images + drift baseline
    reqs = _requests(session, rng)
    total_images = sum(r.shape[0] for r in reqs)

    metrics = MetricsRegistry()
    drift = DriftMonitor(metrics=metrics)
    collector = TelemetryCollector(metrics=metrics, drift=drift)

    elapsed = {"traced": [], "untraced": []}
    try:
        # Replicas snapshot trace enablement at spawn: enable before the
        # traced pool comes up, disable before the untraced one does.
        trace.enable()
        traced_pool = ClusterPool(
            config,
            input_shape=session.input_shape,
            num_classes=session.num_classes,
            metrics=metrics,
            collector=collector,
        )
        traced_pool.start()
        trace.disable()
        plain_pool = ClusterPool(
            config,
            input_shape=session.input_shape,
            num_classes=session.num_classes,
        )
        plain_pool.start()
        for pool, name in ((traced_pool, "traced"), (plain_pool, "untraced")):
            if not pool.wait_ready(timeout=300.0):
                print(f"FATAL: {name} pool failed to come up", file=sys.stderr)
                return 1

        for rnd in range(repeats + 1):  # round 0 is warm-up
            trace.enable()
            dt_traced = _traced_sweep(traced_pool, reqs, trace)
            trace.disable()
            dt_plain = _plain_sweep(plain_pool, reqs)
            if rnd > 0:
                elapsed["traced"].append(dt_traced)
                elapsed["untraced"].append(dt_plain)
    finally:
        # Shutdown drains the replicas, which forces their final
        # telemetry ship before the drained ack — do it before judging
        # the merged trace.
        trace.enable()   # keep local lane attribution for the final merge
        traced_pool.shutdown()
        trace.disable()
        plain_pool.shutdown()

    best = {k: min(v) for k, v in elapsed.items()}
    throughput = {k: total_images / v for k, v in best.items()}
    overhead = best["traced"] / best["untraced"] - 1.0

    # -- trace integrity -----------------------------------------------------
    merged = collector.merged()
    orphans = collector.orphans()
    trees = trace_trees(merged)
    bench_traces = {
        tid: tree for tid, tree in trees.items()
        if any(s["name"] == "bench.request" for s in tree["spans"])
    }
    single_root = all(len(t["roots"]) == 1 for t in bench_traces.values())
    reaches_replica = all(
        any(s["proc"].startswith("replica-") for s in t["spans"])
        for t in bench_traces.values()
    )
    trace_ok = (
        not orphans
        and bool(bench_traces)
        and single_root
        and reaches_replica
    )

    # -- drift coverage ------------------------------------------------------
    snap = drift.snapshot()
    gauges = metrics.as_dict()["gauges"]
    drift_ok = bool(snap) and all(
        f"drift_sensitive_ratio:{layer}" in gauges for layer in snap
    )

    gate_enforced = cores >= GATE_MIN_CORES
    if gate_enforced:
        gate_reason = f"host exposes {cores} usable cores"
    else:
        gate_reason = (f"host exposes {cores} usable core(s) "
                       f"(< {GATE_MIN_CORES}); overhead ratio is "
                       "scheduling noise when replicas timeshare")
    overhead_ok = (not gate_enforced) or overhead <= OVERHEAD_GATE

    rows = [
        [name, f"{best[name] * 1e3:.1f}", f"{throughput[name]:.1f}"]
        for name in ("untraced", "traced")
    ]
    table = ascii_table(
        ["configuration", "sweep ms", "img/s"],
        rows,
        title=(
            f"cluster tracing overhead — {REPLICAS} replicas, "
            f"{N_REQUESTS} mixed-size requests, {total_images} images "
            f"(min of {repeats}, interleaved; BLAS + GEMM pool pinned)"
        ),
    )
    summary = [
        table,
        "",
        f"usable cores: {cores}",
        f"merged spans: {len(merged)} across {len(collector.lanes())} lanes; "
        f"request traces: {len(bench_traces)}",
        "trace integrity gate (no orphans, one root per request, replica "
        "lane reached): " + ("PASS" if trace_ok else "FAIL")
        + f" ({len(orphans)} orphan(s))",
        f"drift coverage gate ({len(snap)} layers sampled): "
        + ("PASS" if drift_ok else "FAIL"),
        f"overhead gate (<= {OVERHEAD_GATE:.0%} traced vs untraced): "
        + (
            f"{'PASS' if overhead <= OVERHEAD_GATE else 'FAIL'} "
            f"({overhead:+.2%})"
            if gate_enforced
            else f"not enforced — {gate_reason} ({overhead:+.2%} measured)"
        ),
    ]
    text = "\n".join(summary)
    print(text)

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "cluster_trace_overhead.txt").write_text(text + "\n")
    sample = collector.write_chrome_trace(
        results_dir / "cluster_trace_sample.json"
    )
    print(f"[sample merged trace written to {sample}]")

    payload = {
        "bench": "cluster_trace_overhead",
        "repeats": repeats,
        "usable_cores": cores,
        "replicas": REPLICAS,
        "requests": N_REQUESTS,
        "images": total_images,
        "sweep_times_ms": {k: v * 1e3 for k, v in best.items()},
        "throughput_img_s": {k: round(v, 2) for k, v in throughput.items()},
        "merged_spans": len(merged),
        "lanes": collector.lanes(),
        "request_traces": len(bench_traces),
        "orphan_spans": len(orphans),
        "drift_layers": sorted(snap),
        "gates": {
            "trace_ok": trace_ok,
            "drift_ok": drift_ok,
            "overhead": round(overhead, 4),
            "overhead_gate": OVERHEAD_GATE,
            "gate_enforced": gate_enforced,
            "gate_reason": gate_reason,
            "overhead_ok": overhead_ok,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[json written to {JSON_PATH}]")

    if check and not (trace_ok and drift_ok and overhead_ok):
        return 1
    return 0


def test_cluster_trace_overhead_gate():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    return run(check=args.check, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
