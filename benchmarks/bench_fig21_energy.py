"""Figure 21 — normalized energy of the four DNNs on the four
accelerators, with the DRAM / Buffer / Cores / static breakdown.

Paper's findings: ODQ saves 97.6% vs INT16, 93.5% vs INT8, 66.9% vs DRQ;
every component contributes.  We assert the orderings and a large
ODQ-vs-INT16 saving.
"""

import numpy as np

from repro.analysis.performance import render_fig21


def test_fig21_normalized_energy(benchmark, accel_comparisons, emit):
    def kernel():
        return [
            c.runs["ODQ"].energy.total_pj for c in accel_comparisons
        ]

    benchmark(kernel)

    emit("fig21_energy", render_fig21(accel_comparisons))

    savings_int16, savings_drq = [], []
    for c in accel_comparisons:
        e = {k: run.energy.total_pj for k, run in c.runs.items()}
        assert e["ODQ"] < e["DRQ"] < e["INT8"] < e["INT16"], c.model_name
        savings_int16.append(c.odq_energy_saving_vs("INT16"))
        savings_drq.append(c.odq_energy_saving_vs("DRQ"))

        # Breakdown components are all positive and sum to the total.
        b = c.runs["ODQ"].energy
        assert b.cores_pj > 0 and b.buffer_pj > 0 and b.dram_pj > 0
        assert abs(b.total_pj - (b.cores_pj + b.buffer_pj + b.dram_pj + b.static_pj)) < 1e-6

    assert np.mean(savings_int16) > 0.7
    assert np.mean(savings_drq) > 0.1
