"""Table 2 — accelerator configurations under the common area budget.

The PE counts are the paper's published values; the bench additionally
checks them against this repo's analytic 45 nm area model (which must
place every design in the right regime, within ~15% of the paper).
"""

from repro.accel.configs import TABLE2
from repro.accel.pe import pes_in_budget
from repro.analysis.performance import render_table2


def test_table2_configurations(benchmark, emit):
    table = benchmark(lambda: dict(TABLE2))
    emit("table2_accelerators", render_table2())

    assert table["INT16"].num_pes == 120
    assert table["INT8"].num_pes == 1692
    assert table["DRQ"].num_pes == 1692
    assert table["ODQ"].num_pes == 4860
    # All designs share the on-chip memory budget.
    mems = {spec.onchip_memory_bytes for spec in table.values()}
    assert len(mems) == 1

    # Analytic area model consistency (see repro.accel.pe).
    assert pes_in_budget(16) == 120
    assert abs(pes_in_budget(4) - 1692) / 1692 < 0.15
    assert abs(pes_in_budget(2) - 4860) / 4860 < 0.15
