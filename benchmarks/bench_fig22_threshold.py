"""Figure 22 — threshold analysis on ResNet-20.

Sweeps the sensitivity threshold and reports Top-1 accuracy plus the
share of INT4 (sensitive) vs INT2 (insensitive) output computation.  The
paper's shape: raising the threshold trades accuracy (gently at first)
for a growing INT2 share.
"""

import pytest

from repro.analysis.sensitivity import render_threshold_sweep
from repro.core.threshold import threshold_sweep


@pytest.fixture(scope="module")
def sweep(wb):
    ds = wb.dataset("cifar10")
    tm = wb.trained_model("resnet20", "cifar10")
    thresholds = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]
    return threshold_sweep(
        tm.model,
        wb.calibration_batch("cifar10"),
        ds.x_test,
        ds.y_test,
        thresholds,
        finetune=wb._finetune_kwargs("cifar10"),
    )


def test_fig22_threshold_analysis(benchmark, sweep, emit):
    points = sweep
    benchmark(lambda: [(p.accuracy, p.insensitive_fraction) for p in points])

    emit(
        "fig22_threshold",
        render_threshold_sweep(points, "Fig. 22: threshold analysis (ResNet-20)"),
    )

    accs = [p.accuracy for p in points]
    insens = [p.insensitive_fraction for p in points]
    # Raising the threshold 0 -> 1 must grow the INT2 share substantially
    # (paper: ~40 points) ...
    assert insens[-1] - insens[0] > 0.15
    # ... and the best accuracy lives at the low-threshold end.
    assert max(accs[:3]) >= max(accs[3:]) - 0.05
