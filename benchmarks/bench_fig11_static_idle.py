"""Figure 11 — % idle PEs under *static* PE allocation.

Two fixed splits from the paper's caption: (a) 15 predictor / 12 executor
arrays and (b) 18 predictor / 9 executor arrays, driven by the measured
per-layer sensitive fractions of ResNet-20 under ODQ.  The paper reports
14-50% idle PEs for static allocation.
"""

import pytest

from repro.accel.alloc import PEAllocation
from repro.analysis.idleness import render_idleness, static_allocation_idleness
from repro.analysis.sensitivity import per_layer_insensitivity


@pytest.fixture(scope="module")
def layer_sensitivities(wb):
    theta = wb.odq_threshold("resnet20", "cifar10")
    model = wb.odq_model("resnet20", "cifar10")
    ds = wb.dataset("cifar10")
    return per_layer_insensitivity(
        model, wb.calibration_batch("cifar10"), ds.x_test[:32], theta
    )


@pytest.mark.parametrize(
    "pred,execu,tag",
    [(15, 12, "a"), (18, 9, "b")],
    ids=["P15-E12", "P18-E9"],
)
def test_fig11_static_allocation_idleness(
    benchmark, layer_sensitivities, emit, pred, execu, tag
):
    alloc = PEAllocation(pred, execu)
    rows = benchmark(static_allocation_idleness, layer_sensitivities, alloc)
    emit(
        f"fig11{tag}_static_idle_{alloc}".replace("/", "-"),
        render_idleness(
            rows,
            f"Fig. 11({tag}): % idle PEs, static allocation {alloc} (ResNet-20)",
        ),
    )
    overall = [r.overall_idle for r in rows]
    # Static allocation wastes a substantial share of PEs in some layers
    # (the paper reports 14-50%).
    assert max(overall) > 0.14
