"""Shared fixtures for the per-figure/table benchmark harness.

Heavy artefacts (datasets, trained models, ODQ thresholds and retrained
twins) are built once per session through the global
:class:`~repro.analysis.workbench.Workbench` and shared by every bench.
Each bench regenerates one table or figure of the paper, prints it, and
writes it to ``results/`` so the full reproduction artefact can be read
after a run; ``pytest benchmarks/ --benchmark-only`` also times each
experiment's computational kernel.

Scale: set ``REPRO_SCALE=default`` for paper-sized runs (32x32 images,
full-width models); the default ``small`` finishes the whole harness in
minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.workbench import global_workbench

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


@pytest.fixture(scope="session")
def wb():
    return global_workbench()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a rendered table/figure to results/ and echo it."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def resnet20_cifar10(wb):
    """(trained model, dataset) pair most figures are built on."""
    tm = wb.trained_model("resnet20", "cifar10")
    return tm.model, wb.dataset("cifar10")


@pytest.fixture(scope="session")
def accel_comparisons(wb):
    """Fig. 19/21 shared artefact: all four models through all four
    (scheme, accelerator) pairs."""
    from repro.analysis.performance import compare_accelerators
    from repro.models.registry import PAPER_MODELS

    out = []
    for model_name in PAPER_MODELS:
        ds = wb.dataset("cifar10")
        tm = wb.trained_model(model_name, "cifar10")
        theta = wb.odq_threshold(model_name, "cifar10")
        out.append(
            compare_accelerators(
                tm.model,
                model_name,
                wb.calibration_batch("cifar10"),
                ds.x_test[:64],
                ds.y_test[:64],
                theta,
                odq_model=wb.odq_model(model_name, "cifar10"),
            )
        )
    return out


@pytest.fixture(scope="session")
def odq_setup(wb):
    """(odq-retrained resnet20, threshold, dataset) for ODQ figures."""
    theta = wb.odq_threshold("resnet20", "cifar10")
    model = wb.odq_model("resnet20", "cifar10")
    return model, theta, wb.dataset("cifar10")
