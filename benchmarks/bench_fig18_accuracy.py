"""Figure 18 — Top-1 accuracy and high-precision share per scheme.

All four paper networks on the CIFAR-10 and CIFAR-100 stand-ins, under
FP32, INT16/INT8 static DoReFa, DRQ 8-4, DRQ 4-2, and ODQ 4-2.  The shape
asserted is the paper's: ODQ tracks DRQ 8-4 closely while DRQ 4-2
collapses at low bit widths.
"""

import pytest

from repro.analysis.accuracy import compare_accuracy, render_fig18
from repro.models.registry import PAPER_MODELS

#: CIFAR-100 at bench scale only for the lighter models (DenseNet at 100
#: classes is disproportionately slow on the NumPy substrate).
DATASETS_FOR = {
    "resnet20": ("cifar10", "cifar100"),
    "resnet56": ("cifar10",),
    "vgg16": ("cifar10", "cifar100"),
    "densenet": ("cifar10",),
}


@pytest.fixture(scope="module")
def comparisons(wb):
    out = []
    for model_name in PAPER_MODELS:
        for ds_name in DATASETS_FOR[model_name]:
            ds = wb.dataset(ds_name)
            tm = wb.trained_model(model_name, ds_name)
            theta = wb.odq_threshold(model_name, ds_name)
            out.append(
                compare_accuracy(
                    tm.model,
                    model_name,
                    ds_name,
                    wb.calibration_batch(ds_name),
                    ds.x_test,
                    ds.y_test,
                    theta,
                    odq_model=wb.odq_model(model_name, ds_name),
                )
            )
    return out


def test_fig18_accuracy_comparison(benchmark, comparisons, wb, emit):
    # Benchmark one representative scheme evaluation (ODQ on ResNet-20).
    ds = wb.dataset("cifar10")
    theta = wb.odq_threshold("resnet20", "cifar10")
    model = wb.odq_model("resnet20", "cifar10")

    from repro.core.pipeline import run_scheme
    from repro.core.schemes import odq_scheme

    benchmark.pedantic(
        run_scheme,
        args=(model, odq_scheme(theta), wb.calibration_batch("cifar10"),
              ds.x_test[:64], ds.y_test[:64]),
        rounds=1,
        iterations=1,
    )

    emit("fig18_accuracy", render_fig18(comparisons))

    for c in comparisons:
        fp = c.get("FP32").accuracy
        # Static INT16/INT8 track FP closely.
        assert abs(c.get("INT16").accuracy - fp) <= 0.08
        # DRQ 4-2 never beats DRQ 8-4 meaningfully (low-bit collapse).
        assert c.get("DRQ 4-2").accuracy <= c.get("DRQ 8-4").accuracy + 0.05
        # ODQ at 4-2 bits clears DRQ at the same bit widths.
        assert c.get("ODQ 4-2").accuracy >= c.get("DRQ 4-2").accuracy - 0.05


def test_fig18_odq_tracks_drq84(benchmark, comparisons, emit):
    """The headline <=0.6% claim, relaxed to our substrate's scale: the
    mean ODQ-vs-DRQ-8-4 gap stays small while DRQ 4-2's gap is large."""
    import numpy as np

    odq_gaps = benchmark(lambda: [c.odq_drop_vs_drq84 for c in comparisons])
    drq42_gaps = [c.drq42_drop_vs_fp for c in comparisons]
    assert np.mean(odq_gaps) < np.mean(drq42_gaps)
