"""Tracing overhead smoke: disabled tracing must cost < 2% on inference.

The obs tracer's disabled path is a module-level flag check returning a
shared no-op span — no allocation, no clock read.  This bench pins that
contract with two measurements:

1. **Micro**: the per-call cost of ``trace.span()`` while disabled,
   versus the span budget of one inference (spans-per-infer counted from
   a single enabled run).  ``noop_cost * spans_per_infer`` must be far
   below 2% of the disabled inference time.
2. **Macro**: wall-clock medians of ``engine.infer`` with the global
   tracer disabled, compared against a build of the same engine before
   any tracer existed is impossible — so instead we assert the derived
   per-infer tracing cost (micro bound) sits under the noise bar, which
   is robust on shared CI runners where back-to-back macro medians
   jitter by more than 2% on their own.

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_obs_overhead.py``
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

OVERHEAD_BUDGET = 0.02  # <2% of disabled inference time


def _build_session():
    from repro.serve.config import ServeConfig
    from repro.serve.session import ModelSession

    config = ServeConfig(model="lenet", scheme="odq", dataset="mnist",
                         train_epochs=0, calib_images=32)
    return ModelSession(config)


def measure_noop_span_cost(iters: int = 200_000) -> float:
    """Median per-call seconds of trace.span() on the disabled path."""
    from repro.obs import trace

    trace.disable()
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iters):
            trace.span("bench.noop", layer="L")
        samples.append((time.perf_counter() - t0) / iters)
    return statistics.median(samples)


def count_spans_per_infer(session) -> int:
    """Spans emitted by one traced inference batch."""
    from repro.obs import trace

    x = session.sample_inputs[:4]
    tracer = trace.get_tracer()
    with tracer.collect(reset=True):
        session.engine.infer(x)
        n = len(tracer.spans())
    return n


def measure_disabled_infer(session, repeats: int = 9) -> float:
    """Median seconds of one engine.infer batch with tracing disabled."""
    from repro.obs import trace

    trace.disable()
    x = session.sample_inputs[:4]
    session.engine.infer(x)  # warm caches
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        session.engine.infer(x)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run(check: bool = False) -> int:
    session = _build_session()
    noop_cost = measure_noop_span_cost()
    spans_per_infer = count_spans_per_infer(session)
    infer_s = measure_disabled_infer(session)
    tracing_cost = noop_cost * spans_per_infer
    share = tracing_cost / infer_s

    rows = [
        ("noop span() call", f"{noop_cost * 1e9:8.1f} ns"),
        ("spans per infer (batch=4)", f"{spans_per_infer:8d}"),
        ("disabled infer median", f"{infer_s * 1e3:8.2f} ms"),
        ("derived tracing cost", f"{tracing_cost * 1e6:8.2f} us"),
        ("share of infer time", f"{share * 100:8.4f} %"),
        ("budget", f"{OVERHEAD_BUDGET * 100:8.2f} %"),
    ]
    width = max(len(r[0]) for r in rows)
    print("obs overhead smoke (tracing disabled)")
    for name, value in rows:
        print(f"  {name:<{width}}  {value}")

    ok = share < OVERHEAD_BUDGET
    print(f"  result: {'PASS' if ok else 'FAIL'} "
          f"(disabled-tracing share {share * 100:.4f}% "
          f"{'<' if ok else '>='} {OVERHEAD_BUDGET * 100:.0f}%)")
    if check and not ok:
        return 1
    return 0


def test_disabled_tracing_overhead_within_noise():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when overhead exceeds budget")
    args = parser.parse_args(argv)
    # Deterministic numpy state for the session build.
    np.random.seed(0)
    return run(check=args.check)


if __name__ == "__main__":
    sys.exit(main())
