"""Replica-process scaling: 1/2/4 engine replicas on the serving sweep.

Measures :class:`repro.cluster.ClusterPool` throughput on a fixed
mixed-size request set at 1, 2, and 4 replica processes.  Timing is
interleaved min-of-N: every round times every replica count once, so
machine-load spikes hit all configurations equally, and the minimum over
rounds is the least-biased cost estimate.  The BLAS and the in-tree GEMM
pool are both pinned to 1 thread (env pins before numpy loads;
``gemm_threads=1`` in the ServeConfig the replicas inherit) so replica
*processes* are the only source of parallelism being measured.

Artefacts: ``BENCH_cluster_scaling.json`` at the repo root (CI uploads
it) and ``results/cluster_scaling.txt``.  ``--check`` enforces the PR
gates:

* exactness — every replicated output equals the single-engine
  chunked reference bit-for-bit, at every replica count
  (unconditional: ODQ's per-chunk quantization makes batch boundaries
  part of the numerical contract, and the router must preserve them);
* scaling — >= 1.6x throughput at 2 replicas over 1 replica, enforced
  only when the host exposes >= 2 usable cores (a 1-core container
  timeshares the replicas; the JSON then records
  ``gate_enforced: false`` with the reason, and CI runners — which do
  have the cores — enforce it).

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_cluster_scaling.py``
"""

from __future__ import annotations

import os

# Pin BLAS-internal threading *before* numpy loads its BLAS: replica
# scaling numbers are meaningless if OpenBLAS also fans out per GEMM.
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_cluster_scaling.json"

REPLICA_COUNTS = (1, 2, 4)
SPEEDUP_GATE = 1.6        #: min 1-replica -> 2-replica throughput speedup
GATE_MIN_CORES = 2        #: cores required before the gate is enforced
N_REQUESTS = 16           #: requests per timed round
MAX_BATCH = 8             #: chunk size — also the request-size spread


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _serve_config(replicas: int):
    from repro.serve.config import ServeConfig

    return ServeConfig(
        model="lenet",
        scheme="odq",
        dataset="mnist",
        train_epochs=0,
        calib_images=32,
        max_batch_size=MAX_BATCH,
        replicas=replicas,
        gemm_threads=1,
        port=0,
    )


def _requests(session, rng: np.random.Generator) -> list[np.ndarray]:
    """Mixed-size request batches, some spanning multiple chunks."""
    base = session.sample_inputs
    out = []
    for _ in range(N_REQUESTS):
        n = int(rng.integers(1, MAX_BATCH + 2))  # 1 .. MAX_BATCH+1 images
        idx = rng.integers(0, base.shape[0], size=n)
        out.append(np.ascontiguousarray(base[idx], dtype=np.float64))
    return out


def _chunked_reference(engine, arr: np.ndarray) -> np.ndarray:
    """Single-engine logits with the router's deterministic chunking."""
    parts = [
        engine.infer(arr[o : o + MAX_BATCH])
        for o in range(0, arr.shape[0], MAX_BATCH)
    ]
    return np.concatenate(parts, axis=0)


def run(check: bool = False, repeats: int = 3) -> int:
    from repro.cluster import ClusterPool
    from repro.obs import trace
    from repro.serve.session import ModelSession
    from repro.utils.report import ascii_table

    trace.disable()
    cores = _usable_cores()
    rng = np.random.default_rng(0x0D9)

    # One reference session in this process: request set + exactness
    # baseline (replicas rebuild bit-identical engines from the config).
    session = ModelSession(_serve_config(1))
    reqs = _requests(session, rng)
    total_images = sum(r.shape[0] for r in reqs)
    references = [_chunked_reference(session.engine, r) for r in reqs]

    pools: dict[int, ClusterPool] = {}
    elapsed: dict[int, list[float]] = {r: [] for r in REPLICA_COUNTS}
    exact: dict[int, bool] = {}
    max_diff: dict[int, float] = {}
    try:
        for r in REPLICA_COUNTS:
            pool = ClusterPool(
                _serve_config(r),
                input_shape=session.input_shape,
                num_classes=session.num_classes,
            )
            pool.start()
            if not pool.wait_ready(timeout=300.0):
                print(f"FATAL: {r}-replica pool failed to come up", file=sys.stderr)
                return 1
            pools[r] = pool

        for rnd in range(repeats + 1):  # round 0 is warm-up + exactness
            for r in REPLICA_COUNTS:
                pool = pools[r]
                t0 = time.perf_counter()
                futs = [pool.submit(a) for a in reqs]
                outs = [f.result(timeout=300.0) for f in futs]
                dt = time.perf_counter() - t0
                if rnd == 0:
                    diffs = [
                        float(np.max(np.abs(o - ref))) if o.size else 0.0
                        for o, ref in zip(outs, references)
                    ]
                    exact[r] = all(
                        np.array_equal(o, ref)
                        for o, ref in zip(outs, references)
                    )
                    max_diff[r] = max(diffs)
                else:
                    elapsed[r].append(dt)
    finally:
        for pool in pools.values():
            pool.shutdown()

    best = {r: min(ts) for r, ts in elapsed.items()}
    throughput = {r: total_images / best[r] for r in REPLICA_COUNTS}
    speedups = {r: best[1] / best[r] if best[r] > 0 else 0.0
                for r in REPLICA_COUNTS}

    exact_ok = all(exact.values())
    gate_enforced = cores >= GATE_MIN_CORES
    if gate_enforced:
        gate_reason = f"host exposes {cores} usable cores"
    else:
        gate_reason = (f"host exposes {cores} usable core(s) "
                       f"(< {GATE_MIN_CORES}); replica scaling not measurable")
    scaling_ok = (not gate_enforced) or speedups[2] >= SPEEDUP_GATE

    rows = [
        [
            f"{r} replica{'s' if r > 1 else ''}",
            f"{best[r] * 1e3:.1f}",
            f"{throughput[r]:.1f}",
            f"{speedups[r]:.2f}x",
            "yes" if exact[r] else "NO",
        ]
        for r in REPLICA_COUNTS
    ]
    table = ascii_table(
        ["configuration", "sweep ms", "img/s", "vs 1", "bit-exact"],
        rows,
        title=(
            f"cluster replica scaling — {N_REQUESTS} mixed-size requests, "
            f"{total_images} images (min of {repeats}, interleaved; "
            "BLAS + GEMM pool pinned to 1 thread)"
        ),
    )
    summary = [
        table,
        "",
        f"usable cores: {cores}",
        "exactness gate (replicated == single-engine chunked reference): "
        + ("PASS" if exact_ok else "FAIL")
        + f" (max |diff| = {max(max_diff.values()):.3g})",
        f"scaling gate (>= {SPEEDUP_GATE}x at 2 replicas): "
        + (
            f"{'PASS' if speedups[2] >= SPEEDUP_GATE else 'FAIL'} "
            f"({speedups[2]:.2f}x)"
            if gate_enforced
            else f"not enforced — {gate_reason} ({speedups[2]:.2f}x measured)"
        ),
    ]
    text = "\n".join(summary)
    print(text)

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "cluster_scaling.txt").write_text(text + "\n")

    payload = {
        "bench": "cluster_scaling",
        "repeats": repeats,
        "usable_cores": cores,
        "blas_threads_pinned": 1,
        "requests": N_REQUESTS,
        "images": total_images,
        "max_batch_size": MAX_BATCH,
        "sweep_times_ms": {str(r): best[r] * 1e3 for r in REPLICA_COUNTS},
        "throughput_img_s": {
            str(r): round(throughput[r], 2) for r in REPLICA_COUNTS
        },
        "speedup_vs_1": {str(r): round(speedups[r], 3) for r in REPLICA_COUNTS},
        "bitexact": {str(r): exact[r] for r in REPLICA_COUNTS},
        "max_abs_diff": {str(r): max_diff[r] for r in REPLICA_COUNTS},
        "gates": {
            "exact_ok": exact_ok,
            "speedup_2r": round(speedups[2], 3),
            "speedup_gate": SPEEDUP_GATE,
            "gate_enforced": gate_enforced,
            "gate_reason": gate_reason,
            "scaling_ok": scaling_ok,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[json written to {JSON_PATH}]")

    if check and not (exact_ok and scaling_ok):
        return 1
    return 0


def test_cluster_scaling_gate():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    return run(check=args.check, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
