"""Compiled inference plans: planned-vs-unplanned latency and exactness.

Measures end-to-end ``engine.infer`` latency on the serve-default
session (lenet/mnist, ``max_batch_size`` images per call) with the
compiled plan (:mod:`repro.core.plan`) on and off.  The plan removes
the per-call tape: module dispatch, autograd graph construction, the
maxpool backward-index precompute, BatchNorm constant reshapes, and
re-deciding GEMM routing and the dense/sparse exec path every call —
the GEMMs themselves are unchanged, which is why the gate is a
wall-clock ratio, not a FLOP count.

Methodology (shared with ``bench_odq_sparse``): one timed run per style
per round, *interleaved*, so machine-load noise hits both styles; the
*minimum* over rounds estimates true cost; round 0 is a discarded
warm-up.  Batch 1 is reported for context but not gated (the serve
path coalesces to ``max_batch_size``).

Artefacts: ``BENCH_plan.json`` at the repo root (CI uploads it) and
``results/plan_speedup.txt``.  Gates:

* bit-exactness — planned output ``array_equal`` unplanned output at
  every measured shape.  Enforced *unconditionally*, ``--check`` or
  not: a plan that changes results is a correctness bug, never a perf
  trade;
* speedup — planned beats unplanned by >= 1.15x on the serve-default
  batch (``--check`` only, like every perf gate).

Run standalone (CI): ``PYTHONPATH=src python benchmarks/bench_plan.py --check``
Or under pytest with the rest of the harness: ``pytest benchmarks/bench_plan.py``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_plan.json"

SPEEDUP_GATE = 1.15  #: min unplanned->planned speedup at the serve batch


def _build_session():
    from repro.serve.config import ServeConfig
    from repro.serve.session import ModelSession

    # Default scale: at smoke scale the layers are so small the tape
    # overhead the plan removes *is* most of the runtime and the speedup
    # inflates; gate at the scale serving actually runs.  Respect an
    # explicit REPRO_SCALE if the caller set one.
    os.environ.setdefault("REPRO_SCALE", "default")
    config = ServeConfig(model="lenet", scheme="odq", dataset="mnist",
                         train_epochs=0, calib_images=32)
    return ModelSession(config)


def _tile(sample: np.ndarray, n: int) -> np.ndarray:
    reps = -(-n // len(sample))
    return np.concatenate([sample] * reps)[:n]


def _timed_infer(engine, x) -> tuple[float, np.ndarray]:
    t0 = time.perf_counter()
    out = engine.infer(x)
    return time.perf_counter() - t0, out


def _measure_shape(engine, x, repeats: int) -> dict:
    """Interleaved min-of-``repeats`` planned vs unplanned at one shape."""
    times = {"planned": [], "unplanned": []}
    outs = {}
    for rnd in range(repeats + 1):
        for style in ("planned", "unplanned"):
            engine.use_plan = style == "planned"
            t, out = _timed_infer(engine, x)
            if rnd == 0:
                outs[style] = out
            else:
                times[style].append(t)
    engine.use_plan = True
    exact = (
        outs["planned"].dtype == outs["unplanned"].dtype
        and np.array_equal(outs["planned"], outs["unplanned"])
    )
    t_planned = min(times["planned"])
    t_unplanned = min(times["unplanned"])
    return {
        "batch": int(x.shape[0]),
        "planned_ms": t_planned * 1e3,
        "unplanned_ms": t_unplanned * 1e3,
        "speedup": t_unplanned / t_planned,
        "bitexact": bool(exact),
    }


def run(check: bool = False, repeats: int = 7) -> int:
    from repro.obs import trace
    from repro.utils.report import ascii_table

    trace.disable()
    np.random.seed(0)
    session = _build_session()
    engine = session.engine
    serve_batch = session.config.max_batch_size

    points = []
    for n in (1, serve_batch):
        x = _tile(session.sample_inputs, n)
        points.append(_measure_shape(engine, x, repeats))

    gated = next(p for p in points if p["batch"] == serve_batch)
    exact_ok = all(p["bitexact"] for p in points)
    speedup_ok = gated["speedup"] >= SPEEDUP_GATE
    plan_stats = engine.plan_stats()

    rows = [
        [
            p["batch"],
            f"{p['unplanned_ms']:.2f}",
            f"{p['planned_ms']:.2f}",
            f"{p['speedup']:.2f}x",
            "yes" if p["bitexact"] else "NO",
            "<- gate" if p["batch"] == serve_batch else "",
        ]
        for p in points
    ]
    table = ascii_table(
        ["batch", "unplanned ms", "planned ms", "speedup", "bit-exact", ""],
        rows,
        title="compiled plan vs per-call path (lenet/mnist, serve default)",
    )
    summary = [
        table,
        "",
        f"plan cache: compiles={plan_stats['compiles']} "
        f"hits={plan_stats['hits']} "
        f"modes={sorted({p['mode'] for p in plan_stats['plans']})}",
        f"bit-exactness at every shape: {'PASS' if exact_ok else 'FAIL'} "
        f"(unconditional gate)",
        f"speedup at serve batch ({serve_batch}): {gated['speedup']:.2f}x "
        f"(gate >= {SPEEDUP_GATE}x) {'PASS' if speedup_ok else 'FAIL'}",
    ]
    text = "\n".join(summary)
    print(text)

    results_dir = REPO_ROOT / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "plan_speedup.txt").write_text(text + "\n")

    payload = {
        "bench": "plan",
        "model": "lenet",
        "dataset": "mnist",
        "serve_batch": serve_batch,
        "repeats": repeats,
        "points": points,
        "plan_stats": {k: v for k, v in plan_stats.items() if k != "plans"},
        "gates": {
            "speedup": gated["speedup"],
            "speedup_gate": SPEEDUP_GATE,
            "speedup_ok": speedup_ok,
            "bitexact_ok": exact_ok,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[json written to {JSON_PATH}]")

    if not exact_ok:
        return 1  # correctness gate: enforced with or without --check
    if check and not speedup_ok:
        return 1
    return 0


def test_plan_speedup_gate():
    """Pytest entry point: same assertion as the CI --check run."""
    assert run(check=True) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the speedup gate fails "
                             "(bit-exactness is enforced regardless)")
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    return run(check=args.check, repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
