"""Figure 19 — normalized execution time of the four DNNs on the four
Table-2 accelerators (INT16, INT8, DRQ, ODQ).

Mask dumps from quantized inference feed the cycle-approximate simulator;
times are normalized to the INT16 DoReFa baseline, like the paper's bars.
Shape asserted: ODQ < DRQ < INT8 < INT16 for every network, with a large
ODQ-vs-INT16 reduction (paper: 97.8% avg) and a substantial ODQ-vs-DRQ
reduction (paper: 67.6% avg).
"""

import numpy as np

from repro.analysis.performance import render_fig19


def test_fig19_normalized_execution_time(benchmark, accel_comparisons, emit):
    # Benchmark the simulator itself on the largest workload set.
    heaviest = accel_comparisons[0].runs["ODQ"].sim
    wls = [l for l in heaviest.layers]

    def kernel():
        return [l.cycles for l in wls]

    benchmark(kernel)

    emit("fig19_exec_time", render_fig19(accel_comparisons))

    reductions_int16, reductions_drq = [], []
    for c in accel_comparisons:
        t = {k: run.cycles for k, run in c.runs.items()}
        assert t["ODQ"] < t["DRQ"] < t["INT8"] < t["INT16"], c.model_name
        reductions_int16.append(c.odq_speedup_vs("INT16"))
        reductions_drq.append(c.odq_speedup_vs("DRQ"))

    # Headline shape: huge win vs INT16, substantial win vs DRQ.
    assert np.mean(reductions_int16) > 0.85
    assert np.mean(reductions_drq) > 0.2
