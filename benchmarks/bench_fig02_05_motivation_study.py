"""Figures 2-5 — the DRQ motivation study on ResNet-20.

* Fig. 2: % of low-precision inputs feeding each *sensitive* output,
  bucketed 0-25/25-50/50-75/75-100 per layer.
* Fig. 3: precision loss on sensitive outputs per layer.
* Fig. 4: % of high-precision inputs feeding each *insensitive* output.
* Fig. 5: extra precision (Eq. 1) wasted on insensitive outputs.

One bench file regenerates all four because they share a single
instrumented DRQ inference pass (exactly as in the paper's study).
"""

import pytest

from repro.analysis.motivation import (
    collect_motivation_stats,
    render_bucket_table,
    render_scalar_chart,
)


@pytest.fixture(scope="module")
def motivation_stats(resnet20_cifar10, wb):
    model, ds = resnet20_cifar10
    calib = wb.calibration_batch("cifar10")
    return collect_motivation_stats(
        model, calib, ds.x_test[:32], output_threshold=0.2
    )


def test_fig02_lowprec_inputs_into_sensitive_outputs(benchmark, resnet20_cifar10, wb, emit):
    model, ds = resnet20_cifar10
    calib = wb.calibration_batch("cifar10")
    stats = benchmark.pedantic(
        collect_motivation_stats,
        args=(model, calib, ds.x_test[:16], 0.2),
        rounds=1,
        iterations=1,
    )
    emit(
        "fig02_lowprec_inputs",
        render_bucket_table(
            stats, "low",
            "Fig. 2: % low-precision inputs used per sensitive output (DRQ, ResNet-20)",
        ),
    )
    # Paper's observation: in most layers sensitive outputs draw >25% of
    # their inputs from low precision.
    many = sum(1 for s in stats if s.lowprec_input_buckets[1:].sum() > 0.5)
    assert many >= len(stats) // 2


def test_fig03_precision_loss_sensitive(motivation_stats, benchmark, emit):
    stats = motivation_stats
    losses = benchmark(lambda: [s.precision_loss_sensitive for s in stats])
    emit(
        "fig03_precision_loss",
        render_scalar_chart(
            stats, "precision_loss_sensitive",
            "Fig. 3: DRQ precision loss on sensitive outputs per layer (ResNet-20)",
        ),
    )
    assert max(losses) > 0.0  # the loss the paper complains about exists


def test_fig04_highprec_inputs_into_insensitive_outputs(motivation_stats, benchmark, emit):
    stats = motivation_stats
    shares = benchmark(lambda: [s.highprec_input_buckets[1:].sum() for s in stats])
    emit(
        "fig04_highprec_waste",
        render_bucket_table(
            stats, "high",
            "Fig. 4: % high-precision inputs used per insensitive output (DRQ, ResNet-20)",
        ),
    )
    # Paper: >25% of high-precision inputs feed insensitive outputs in
    # multiple layers.
    assert sum(1 for v in shares if v > 0.25) >= 2


def test_fig05_extra_precision_insensitive(motivation_stats, benchmark, emit):
    stats = motivation_stats
    extras = benchmark(lambda: [s.extra_precision_insensitive for s in stats])
    emit(
        "fig05_extra_precision",
        render_scalar_chart(
            stats, "extra_precision_insensitive",
            "Fig. 5: computation waste (Eq. 1 extra precision) on insensitive outputs",
        ),
    )
    assert max(extras) > 0.0
